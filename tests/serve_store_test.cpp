// Tests for the persistent content-addressed evaluation store: framed
// journal round-trip fidelity, load-time and manual compaction, crash-tail
// recovery, the corruption policy (per-record CRC skip with counted
// reasons; header-level problems reject), legacy v1 migration, divergent
// duplicate detection, concurrent reader/writer discipline, and the
// cold-search/warm-search equivalence the design-query service builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "search/multires_search.hpp"
#include "serve/store.hpp"

namespace metacore::serve {
namespace {

std::string temp_store_path(const char* name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  // Also clear any sharded layout (`path.d/`) a previous run under
  // METACORE_STORE_SHARDS may have left behind — a stale shard directory
  // would replay into a test expecting a cold store.
  std::error_code ec;
  std::filesystem::remove_all(path + ".d", ec);
  return path;
}

/// Explicit single-file layout: the byte-level journal tests assert the
/// on-disk format of `path` itself, so an ambient METACORE_STORE_SHARDS
/// (the CI worker-pool matrix sets it) must not move the records into a
/// shard directory. Everything else from the environment still applies.
StoreConfig single_file() {
  StoreConfig config = StoreConfig::from_env();
  config.shards = 1;
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::app | std::ios::binary);
  os << bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::trunc | std::ios::binary) << bytes;
}

search::Evaluation sample_eval(double cost) {
  search::Evaluation eval;
  eval.feasible = true;
  eval.confidence_weight = 42.0;
  eval.metrics["cost"] = cost;
  eval.metrics["odd"] = 0.1 + 0.2;  // not exactly 0.3: exercises %.17g
  return eval;
}

TEST(EvaluationStore, CreatesFreshJournalWithHeader) {
  const std::string path = temp_store_path("fresh.jsonl");
  EvaluationStore store(path, single_file());
  EXPECT_EQ(store.size(), 0u);
  const std::string text = read_file(path);
  EXPECT_NE(text.find("metacore-journal"), std::string::npos);
  EXPECT_NE(text.find("metacore-evaluation-store"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  std::remove(path.c_str());
}

TEST(EvaluationStore, RejectsEmptyPath) {
  EXPECT_THROW(EvaluationStore(""), std::invalid_argument);
}

TEST(EvaluationStore, RoundTripsEvaluationsBitExactly) {
  const std::string path = temp_store_path("roundtrip.jsonl");
  search::Evaluation weird;
  weird.feasible = false;
  weird.confidence_weight = 3.0517578125e-05;
  weird.failure_reason = "non-convergence: \"quoted\"\n\ttabbed \\ slash";
  weird.metrics = {{"inf", std::numeric_limits<double>::infinity()},
                   {"ninf", -std::numeric_limits<double>::infinity()},
                   {"tiny", 4.9406564584124654e-324}};
  {
    EvaluationStore store(path);
    store.record("fp-a", {0, 4}, 1, sample_eval(1.25));
    store.record("fp-a", {3, 1}, 0, weird);
    store.record("fp-b", {0, 4}, 1, sample_eval(9.0));
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.stats().appends, 3u);
  }
  EvaluationStore reopened(path);
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.stats().journal_records, 3u);
  EXPECT_EQ(reopened.stats().duplicate_records, 0u);
  EXPECT_EQ(reopened.stats().skipped_records, 0u);
  EXPECT_EQ(reopened.stats().recovered_bytes, 0u);
  EXPECT_FALSE(reopened.stats().degraded);

  const auto hit = reopened.lookup("fp-a", {0, 4}, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->metrics, sample_eval(1.25).metrics);  // bit-exact
  EXPECT_EQ(hit->confidence_weight, 42.0);

  const auto odd = reopened.lookup("fp-a", {3, 1}, 0);
  ASSERT_TRUE(odd.has_value());
  EXPECT_FALSE(odd->feasible);
  EXPECT_EQ(odd->failure_reason, weird.failure_reason);
  EXPECT_EQ(odd->metrics, weird.metrics);

  // Wrong fingerprint / indices / fidelity all miss.
  EXPECT_FALSE(reopened.lookup("fp-c", {0, 4}, 1).has_value());
  EXPECT_FALSE(reopened.lookup("fp-a", {0, 5}, 1).has_value());
  EXPECT_FALSE(reopened.lookup("fp-a", {0, 4}, 2).has_value());
  const auto stats = reopened.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 3u);
  std::remove(path.c_str());
}

TEST(EvaluationStore, EntriesForScopesByFingerprint) {
  const std::string path = temp_store_path("scope.jsonl");
  EvaluationStore store(path);
  store.record("fp-b", {1}, 0, sample_eval(2.0));
  store.record("fp-a", {2}, 0, sample_eval(3.0));
  store.record("fp-a", {1}, 1, sample_eval(1.0));
  const auto a = store.entries_for("fp-a");
  ASSERT_EQ(a.size(), 2u);
  // Deterministic key order: indices ascending, then fidelity.
  EXPECT_EQ(std::get<0>(a[0]), (std::vector<int>{1}));
  EXPECT_EQ(std::get<1>(a[0]), 1);
  EXPECT_EQ(std::get<0>(a[1]), (std::vector<int>{2}));
  EXPECT_EQ(store.entries_for("fp-b").size(), 1u);
  EXPECT_TRUE(store.entries_for("absent").empty());
  std::remove(path.c_str());
}

TEST(EvaluationStore, FirstWriteWinsAndDuplicateAppendIsSkipped) {
  const std::string path = temp_store_path("dup.jsonl");
  EvaluationStore store(path);
  store.record("fp", {7}, 0, sample_eval(1.0));
  store.record("fp", {7}, 0, sample_eval(1.0));  // no-op
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().appends, 1u);
  EXPECT_EQ(store.stats().divergent_duplicates, 0u);
  EXPECT_EQ(store.divergent_duplicates(), 0u);
  std::remove(path.c_str());
}

TEST(EvaluationStore, CountsDivergentDuplicates) {
  const std::string path = temp_store_path("divergent.jsonl");
  EvaluationStore store(path);
  store.record("fp", {7}, 0, sample_eval(1.0));
  store.record("fp", {7}, 0, sample_eval(1.0));  // bit-identical: fine
  EXPECT_EQ(store.divergent_duplicates(), 0u);
  // Same key, different evaluation: upstream determinism drift. First
  // write still wins, but the divergence is counted, not masked.
  store.record("fp", {7}, 0, sample_eval(2.0));
  search::Evaluation infeasible = sample_eval(1.0);
  infeasible.feasible = false;
  store.record("fp", {7}, 0, infeasible);
  EXPECT_EQ(store.divergent_duplicates(), 2u);
  EXPECT_EQ(store.stats().divergent_duplicates, 2u);
  ASSERT_TRUE(store.lookup("fp", {7}, 0).has_value());
  EXPECT_EQ(store.lookup("fp", {7}, 0)->metric("cost"), 1.0);  // first write
  std::remove(path.c_str());
}

TEST(EvaluationStore, CompactsDuplicateJournalRecordsOnLoad) {
  const std::string path = temp_store_path("compact.jsonl");
  {
    EvaluationStore store(path, single_file());
    store.record("fp", {7}, 0, sample_eval(1.0));
  }
  // Simulate a second writer-epoch having appended the same key (e.g. two
  // runs racing before single-writer discipline was restored): duplicate
  // the record frame verbatim. Dead ratio 1/2 >= the default 0.25, so the
  // next open compacts.
  const std::string text = read_file(path);
  const std::size_t first_nl = text.find('\n');
  append_raw(path, text.substr(first_nl + 1));
  {
    EvaluationStore store(path, single_file());
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.stats().journal_records, 2u);
    EXPECT_EQ(store.stats().duplicate_records, 1u);
    EXPECT_EQ(store.stats().compactions, 1u);
  }
  // The rewrite is durable: a third open sees a clean compacted journal.
  EvaluationStore clean(path, single_file());
  EXPECT_EQ(clean.stats().journal_records, 1u);
  EXPECT_EQ(clean.stats().duplicate_records, 0u);
  EXPECT_EQ(clean.stats().compactions, 0u);
  ASSERT_TRUE(clean.lookup("fp", {7}, 0).has_value());
  std::remove(path.c_str());
}

TEST(EvaluationStore, ManualCompactReclaimsDeadBytes) {
  const std::string path = temp_store_path("manual_compact.jsonl");
  // Ratio-triggered compaction off: dead records accumulate until an
  // explicit compact().
  StoreConfig config;
  config.auto_compact_dead_ratio = 0.0;
  {
    EvaluationStore store(path, config);
    store.record("fp", {1}, 0, sample_eval(1.0));
    store.record("fp", {2}, 0, sample_eval(2.0));
  }
  // Duplicate every record frame 4x (five copies total).
  const std::string text = read_file(path);
  const std::string frames = text.substr(text.find('\n') + 1);
  for (int i = 0; i < 4; ++i) append_raw(path, frames);

  EvaluationStore store(path, config);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().duplicate_records, 8u);
  EXPECT_EQ(store.stats().compactions, 0u);  // ratio trigger disabled
  const std::size_t before = read_file(path).size();
  const std::size_t reclaimed = store.compact();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(read_file(path).size(), before - reclaimed);
  const auto stats = store.stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.compaction_bytes_before, before);
  EXPECT_LT(stats.compaction_bytes_after, before);
  // The compacted journal still accepts appends and replays cleanly.
  store.record("fp", {3}, 0, sample_eval(3.0));
  EvaluationStore reopened(path, config);
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.stats().duplicate_records, 0u);
  std::remove(path.c_str());
}

TEST(EvaluationStore, RecoversUnterminatedCrashTail) {
  const std::string path = temp_store_path("tail.jsonl");
  {
    EvaluationStore store(path);
    store.record("fp", {1}, 0, sample_eval(1.0));
    store.record("fp", {2}, 0, sample_eval(2.0));
  }
  // A crash mid-append leaves an incomplete frame with no trailing
  // newline: the frame claims more bytes than the file holds.
  append_raw(path, "#0000002a|deadbeef|{\"fingerprint\":\"fp\",\"rec");
  {
    EvaluationStore store(path);
    EXPECT_EQ(store.size(), 2u);  // no completed evaluation lost
    EXPECT_GT(store.stats().recovered_bytes, 0u);
    EXPECT_EQ(store.stats().skipped_records, 0u);  // a tail is not damage
    ASSERT_TRUE(store.lookup("fp", {1}, 0).has_value());
    ASSERT_TRUE(store.lookup("fp", {2}, 0).has_value());
    // Recovery rewrote the file: appends go to a clean journal.
    store.record("fp", {3}, 0, sample_eval(3.0));
  }
  EvaluationStore clean(path);
  EXPECT_EQ(clean.size(), 3u);
  EXPECT_EQ(clean.stats().recovered_bytes, 0u);
  std::remove(path.c_str());
}

TEST(EvaluationStore, CrashDuringHeaderWriteStartsFresh) {
  const std::string path = temp_store_path("header_crash.jsonl");
  append_raw(path, "{\"magic\":\"metacore-jour");  // no newline
  EvaluationStore store(path);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_GT(store.stats().recovered_bytes, 0u);
  store.record("fp", {1}, 0, sample_eval(1.0));
  EvaluationStore reopened(path);
  EXPECT_EQ(reopened.size(), 1u);
  std::remove(path.c_str());
}

TEST(EvaluationStore, SkipsTerminatedGarbageWithCountedReason) {
  const std::string path = temp_store_path("garbage.jsonl");
  {
    EvaluationStore store(path, single_file());
    store.record("fp", {1}, 0, sample_eval(1.0));
  }
  // Newline-terminated damage cannot be a crashed append. With per-record
  // CRCs the blast radius is one record: it is skipped with a counted,
  // descriptive reason instead of poisoning the whole journal.
  append_raw(path, "this is not a frame\n");
  {
    EvaluationStore store(path, single_file());
    EXPECT_EQ(store.size(), 1u);
    const auto stats = store.stats();
    EXPECT_EQ(stats.skipped_records, 1u);
    ASSERT_FALSE(stats.skip_reasons.empty());
    EXPECT_NE(stats.skip_reasons.front().find("framing"), std::string::npos)
        << stats.skip_reasons.front();
    ASSERT_TRUE(store.lookup("fp", {1}, 0).has_value());
  }
  // Damage triggers a recovery rewrite: the next open is clean.
  EvaluationStore clean(path, single_file());
  EXPECT_EQ(clean.stats().skipped_records, 0u);
  std::remove(path.c_str());
}

TEST(EvaluationStore, SkipsCorruptRecordMidFileAndKeepsTheRest) {
  const std::string path = temp_store_path("midfile.jsonl");
  {
    EvaluationStore store(path, single_file());
    store.record("fp", {1}, 0, sample_eval(1.0));
    store.record("fp", {2}, 0, sample_eval(2.0));
  }
  // Flip one payload byte of the *first* record frame (mid-file, still
  // newline-terminated): its CRC no longer matches. Only that record is
  // lost; the later record survives.
  std::string text = read_file(path);
  const std::size_t first_frame = text.find("\n#") + 1;
  const std::size_t payload_byte = first_frame + 19 + 5;
  text[payload_byte] ^= 0x20;
  write_file(path, text);
  {
    EvaluationStore store(path, single_file());
    EXPECT_EQ(store.size(), 1u);
    EXPECT_FALSE(store.lookup("fp", {1}, 0).has_value());
    ASSERT_TRUE(store.lookup("fp", {2}, 0).has_value());
    const auto stats = store.stats();
    EXPECT_EQ(stats.skipped_records, 1u);
    ASSERT_FALSE(stats.skip_reasons.empty());
    EXPECT_NE(stats.skip_reasons.front().find("CRC32C mismatch"),
              std::string::npos)
        << stats.skip_reasons.front();
  }
  EvaluationStore clean(path, single_file());
  EXPECT_EQ(clean.stats().skipped_records, 0u);
  EXPECT_EQ(clean.size(), 1u);
  std::remove(path.c_str());
}

TEST(EvaluationStore, RejectsJournalFormatVersionMismatchDescriptively) {
  const std::string path = temp_store_path("version.jsonl");
  { EvaluationStore store(path, single_file()); }
  std::string text = read_file(path);
  const auto pos = text.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"version\":9");
  write_file(path, text);
  try {
    EvaluationStore store(path, single_file());
    FAIL() << "journal format version mismatch must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(EvaluationStore, RejectsStoreSchemaVersionMismatchDescriptively) {
  const std::string path = temp_store_path("kind_version.jsonl");
  { EvaluationStore store(path, single_file()); }
  std::string text = read_file(path);
  const std::string needle = "\"kind_version\":" + std::to_string(kStoreVersion);
  const auto pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"kind_version\":9");
  write_file(path, text);
  try {
    EvaluationStore store(path, single_file());
    FAIL() << "store schema version mismatch must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(EvaluationStore, RejectsForeignFileDescriptively) {
  const std::string path = temp_store_path("foreign.jsonl");
  write_file(path, "{\"magic\":\"something-else\",\"version\":1}\n");
  try {
    EvaluationStore store(path);
    FAIL() << "foreign file must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not a metacore evaluation store"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(EvaluationStore, MigratesLegacyV1StoreOnOpen) {
  const std::string path = temp_store_path("legacy.jsonl");
  // A pre-journal (version 1) store: JSONL, no frames, no checksums.
  write_file(path,
             "{\"magic\":\"metacore-evaluation-store\",\"version\":1}\n"
             "{\"fingerprint\":\"fp\",\"record\":{\"indices\":[3,1],"
             "\"fidelity\":1,\"feasible\":true,\"confidence_weight\":42,"
             "\"failure_reason\":\"\",\"metrics\":{\"cost\":1.25}}}\n");
  // Pin the single-file layout: this test asserts the migrated bytes of
  // `path` itself, so an ambient METACORE_STORE_SHARDS must not reshard.
  StoreConfig single = StoreConfig::from_env();
  single.shards = 1;
  {
    EvaluationStore store(path, single);
    EXPECT_EQ(store.size(), 1u);
    const auto hit = store.lookup("fp", {3, 1}, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->metric("cost"), 1.25);
  }
  // The open migrated the file to the framed format.
  const std::string text = read_file(path);
  EXPECT_NE(text.find("metacore-journal"), std::string::npos);
  EXPECT_NE(text.find("\n#"), std::string::npos);
  EvaluationStore reopened(path, single);
  EXPECT_EQ(reopened.size(), 1u);
  ASSERT_TRUE(reopened.lookup("fp", {3, 1}, 1).has_value());
  std::remove(path.c_str());
}

TEST(EvaluationStore, LegacyStoreStaysStrictAboutTerminatedGarbage) {
  const std::string path = temp_store_path("legacy_garbage.jsonl");
  // Without CRCs, damage and writer bugs are indistinguishable: the
  // legacy policy (reject loudly) is preserved for legacy files.
  write_file(path,
             "{\"magic\":\"metacore-evaluation-store\",\"version\":1}\n"
             "this is not json\n");
  try {
    EvaluationStore store(path);
    FAIL() << "terminated garbage in a legacy store must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("corrupt at line 2"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(EvaluationStore, ConcurrentReadersAndWriterAreSafe) {
  const std::string path = temp_store_path("concurrent.jsonl");
  EvaluationStore store(path);
  constexpr int kWrites = 64;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&store, &stop] {
      while (!stop.load()) {
        for (int i = 0; i < kWrites; ++i) {
          const auto hit = store.lookup("fp", {i}, 0);
          if (hit.has_value()) {
            EXPECT_EQ(hit->metric("cost"), static_cast<double>(i));
          }
        }
        (void)store.size();
        (void)store.entries_for("fp");
      }
    });
  }
  for (int i = 0; i < kWrites; ++i) {
    store.record("fp", {i}, 0, sample_eval(static_cast<double>(i)));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kWrites));
  EvaluationStore reopened(path);
  EXPECT_EQ(reopened.size(), static_cast<std::size_t>(kWrites));
  std::remove(path.c_str());
}

// --- Sharded layout: fingerprint-prefix sharding, migration, isolation.

StoreConfig sharded(std::size_t shards) {
  StoreConfig config;
  config.shards = shards;
  return config;
}

TEST(ShardedStore, RoutingHashIsStableAndInRange) {
  // The routing hash is a pure function of the bytes: the same fingerprint
  // must route identically across runs, builds, and store instances.
  EXPECT_EQ(fingerprint_hash("viterbi|x"), fingerprint_hash("viterbi|x"));
  EXPECT_NE(fingerprint_hash("viterbi|x"), fingerprint_hash("viterbi|y"));
  EXPECT_EQ(shard_index("anything", 1), 0u);
  for (const char* fp : {"a", "b", "viterbi|ber=1e-4", "iir|t=1.0"}) {
    EXPECT_LT(shard_index(fp, 4), 4u);
    EXPECT_EQ(shard_index(fp, 4), shard_index(fp, 4));
  }
}

TEST(ShardedStore, RoundTripsAcrossShardsWithPerShardJournals) {
  const std::string path = temp_store_path("sharded.store");
  constexpr std::size_t kShards = 4;
  {
    EvaluationStore store(path, sharded(kShards));
    EXPECT_EQ(store.shard_count(), kShards);
    for (int i = 0; i < 16; ++i) {
      store.record("fp-" + std::to_string(i), {i}, 0,
                   sample_eval(static_cast<double>(i)));
    }
    EXPECT_EQ(store.size(), 16u);
    // Every entry landed in the shard its fingerprint hashes to.
    for (int i = 0; i < 16; ++i) {
      const std::string fp = "fp-" + std::to_string(i);
      const std::string text =
          read_file(store.shard_path(shard_index(fp, kShards)));
      EXPECT_NE(text.find("\"" + fp + "\""), std::string::npos) << fp;
    }
    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.shards, kShards);
    EXPECT_FALSE(stats.migrated_layout);
    ASSERT_EQ(stats.shard_entries.size(), kShards);
    std::size_t total = 0;
    for (const std::size_t n : stats.shard_entries) total += n;
    EXPECT_EQ(total, 16u);
  }
  // Reopen at the same shard count: an in-place per-shard load, no
  // migration, nothing lost.
  EvaluationStore reopened(path, sharded(kShards));
  EXPECT_FALSE(reopened.stats().migrated_layout);
  EXPECT_EQ(reopened.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    const auto hit = reopened.lookup("fp-" + std::to_string(i), {i}, 0);
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->metric("cost"), static_cast<double>(i));
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    std::remove(reopened.shard_path(s).c_str());
  }
}

TEST(ShardedStore, MigratesSingleFileToShardsAndBack) {
  const std::string path = temp_store_path("migrate.store");
  {
    EvaluationStore store(path, sharded(1));  // historical single-file layout
    for (int i = 0; i < 12; ++i) {
      store.record("fp-" + std::to_string(i), {i}, 0,
                   sample_eval(static_cast<double>(i)));
    }
  }
  {
    // Single file -> 4 shards: transparent merge + rewrite.
    EvaluationStore store(path, sharded(4));
    EXPECT_TRUE(store.stats().migrated_layout);
    EXPECT_EQ(store.size(), 12u);
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(store.lookup("fp-" + std::to_string(i), {i}, 0).has_value());
    }
    // The stale single file is gone; appends keep working per shard.
    EXPECT_TRUE(read_file(path).empty());
    store.record("fp-new", {99}, 0, sample_eval(99.0));
  }
  {
    // 4 shards -> single file: the reverse migration, byte-compatible v2.
    EvaluationStore store(path, sharded(1));
    EXPECT_TRUE(store.stats().migrated_layout);
    EXPECT_EQ(store.size(), 13u);
    ASSERT_TRUE(store.lookup("fp-new", {99}, 0).has_value());
  }
  // After migrating back, a single-file open sees a clean store with no
  // further migration to do.
  EvaluationStore plain(path, sharded(1));
  EXPECT_FALSE(plain.stats().migrated_layout);
  EXPECT_EQ(plain.size(), 13u);
  std::remove(path.c_str());
}

TEST(ShardedStore, ReshardMergesEveryShard) {
  const std::string path = temp_store_path("reshard.store");
  {
    EvaluationStore store(path, sharded(4));
    for (int i = 0; i < 20; ++i) {
      store.record("fp-" + std::to_string(i), {i}, 0,
                   sample_eval(static_cast<double>(i)));
    }
  }
  // 4 -> 2: shard files with index >= 2 are merged in and removed.
  EvaluationStore store(path, sharded(2));
  EXPECT_TRUE(store.stats().migrated_layout);
  EXPECT_EQ(store.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.lookup("fp-" + std::to_string(i), {i}, 0).has_value());
  }
  EXPECT_EQ(read_file(path + ".d/shard-02.journal"), "");
  EXPECT_EQ(read_file(path + ".d/shard-03.journal"), "");
  std::remove(store.shard_path(0).c_str());
  std::remove(store.shard_path(1).c_str());
}

TEST(ShardedStore, TornShardTailRecoversWhileOthersServe) {
  const std::string path = temp_store_path("torn_shard.store");
  constexpr std::size_t kShards = 4;
  {
    EvaluationStore store(path, sharded(kShards));
    for (int i = 0; i < 16; ++i) {
      store.record("fp-" + std::to_string(i), {i}, 0,
                   sample_eval(static_cast<double>(i)));
    }
  }
  // Crash-matrix one shard: truncate its journal at EVERY byte boundary of
  // the final frame (each prefix is a possible post-crash state) and
  // verify the open recovers the shard and the other shards serve
  // everything they hold, untouched.
  EvaluationStore probe(path, sharded(kShards));
  const std::string victim = probe.shard_path(0);
  const std::string full = read_file(victim);
  const std::size_t last_frame = full.rfind("\n#") + 1;
  ASSERT_GT(last_frame, 0u);
  for (std::size_t cut = last_frame + 1; cut < full.size(); ++cut) {
    write_file(victim, full.substr(0, cut));
    EvaluationStore store(path, sharded(kShards));
    EXPECT_EQ(store.stats().quarantined_shards, 0u) << "cut=" << cut;
    // Every fingerprint outside the victim shard must still be served.
    std::size_t outside = 0;
    for (int i = 0; i < 16; ++i) {
      const std::string fp = "fp-" + std::to_string(i);
      if (shard_index(fp, kShards) == 0) continue;
      ++outside;
      EXPECT_TRUE(store.lookup(fp, {i}, 0).has_value())
          << fp << " cut=" << cut;
    }
    ASSERT_GT(outside, 0u);
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    std::remove(probe.shard_path(s).c_str());
  }
}

TEST(ShardedStore, QuarantinesHeaderCorruptShardAndServesTheRest) {
  const std::string path = temp_store_path("quarantine.store");
  constexpr std::size_t kShards = 4;
  std::string victim;
  {
    EvaluationStore store(path, sharded(kShards));
    for (int i = 0; i < 16; ++i) {
      store.record("fp-" + std::to_string(i), {i}, 0,
                   sample_eval(static_cast<double>(i)));
    }
    victim = store.shard_path(2);
  }
  // Header-level corruption would reject a single-file store; a sharded
  // store quarantines just the bad shard and keeps serving the others.
  write_file(victim, "{\"magic\":\"something-else\",\"version\":1}\n");
  EvaluationStore store(path, sharded(kShards));
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.quarantined_shards, 1u);
  EXPECT_FALSE(read_file(victim + ".rejected").empty());
  std::size_t served = 0;
  for (int i = 0; i < 16; ++i) {
    const std::string fp = "fp-" + std::to_string(i);
    if (shard_index(fp, kShards) == 2) continue;
    ++served;
    EXPECT_TRUE(store.lookup(fp, {i}, 0).has_value()) << fp;
  }
  ASSERT_GT(served, 0u);
  // The quarantined shard restarted empty and accepts new work.
  store.record("replacement", {1}, 0, sample_eval(5.0));
  EXPECT_TRUE(store.lookup("replacement", {1}, 0).has_value());
  for (std::size_t s = 0; s < kShards; ++s) {
    std::remove(store.shard_path(s).c_str());
  }
  std::remove((victim + ".rejected").c_str());
}

TEST(ShardedStore, ConcurrentWritersOnDistinctShardsStayConsistent) {
  const std::string path = temp_store_path("shard_concurrent.store");
  EvaluationStore store(path, sharded(4));
  constexpr int kPerThread = 64;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        store.record("fp-" + std::to_string(t), {i}, 0,
                     sample_eval(static_cast<double>(i)));
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(store.size(), 4u * kPerThread);
  EXPECT_EQ(store.divergent_duplicates(), 0u);
  // The contention counter is wired through stats (its value depends on
  // scheduling; correctness above is the hard assertion).
  (void)store.stats().lock_contention;
  EvaluationStore reopened(path, sharded(4));
  EXPECT_EQ(reopened.size(), 4u * kPerThread);
  for (std::size_t s = 0; s < 4; ++s) {
    std::remove(store.shard_path(s).c_str());
  }
}

TEST(ShardedStore, PerShardCompactionReclaimsOnlyTheBloatedShard) {
  const std::string path = temp_store_path("shard_compact.store");
  StoreConfig config = sharded(2);
  config.auto_compact_dead_ratio = 0.0;  // manual compaction only
  {
    EvaluationStore store(path, config);
    store.record("fp-a", {1}, 0, sample_eval(1.0));
    store.record("fp-b", {1}, 0, sample_eval(2.0));
    // Bloat exactly one shard with duplicate frames.
    const std::string bloated = store.shard_path(shard_index("fp-a", 2));
    const std::string text = read_file(bloated);
    const std::string frames = text.substr(text.find('\n') + 1);
    ASSERT_FALSE(frames.empty());
  }
  EvaluationStore store(path, config);
  const std::string bloated = store.shard_path(shard_index("fp-a", 2));
  const std::string text = read_file(bloated);
  append_raw(bloated, text.substr(text.find('\n') + 1));
  const std::size_t reclaimed = store.compact();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(store.stats().compactions, 2u);  // one per shard
  EvaluationStore reopened(path, config);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.stats().duplicate_records, 0u);
  for (std::size_t s = 0; s < 2; ++s) {
    std::remove(store.shard_path(s).c_str());
  }
}

TEST(ShardedStore, FromEnvParsesShardCount) {
  ::setenv("METACORE_STORE_SHARDS", "4", 1);
  EXPECT_EQ(StoreConfig::from_env().shards, 4u);
  ::setenv("METACORE_STORE_SHARDS", "0", 1);
  EXPECT_THROW(StoreConfig::from_env(), std::invalid_argument);
  ::setenv("METACORE_STORE_SHARDS", "abc", 1);
  EXPECT_THROW(StoreConfig::from_env(), std::invalid_argument);
  ::setenv("METACORE_STORE_SHARDS", "400", 1);
  EXPECT_THROW(StoreConfig::from_env(), std::invalid_argument);
  ::unsetenv("METACORE_STORE_SHARDS");
  EXPECT_EQ(StoreConfig::from_env().shards, 1u);
}

// --- Search integration: the contract the design-query service relies on.

search::DesignSpace bowl_space(int dims, int points) {
  std::vector<search::ParameterDef> params;
  for (int d = 0; d < dims; ++d) {
    search::ParameterDef p;
    p.name = "x" + std::to_string(d);
    for (int i = 0; i < points; ++i) {
      p.values.push_back(static_cast<double>(i) / (points - 1));
    }
    p.correlation = search::Correlation::Smooth;
    params.push_back(p);
  }
  return search::DesignSpace(params);
}

search::EvaluateFn bowl_eval(std::vector<double> optimum,
                             std::atomic<std::size_t>* count) {
  return [optimum, count](const std::vector<double>& point, int) {
    count->fetch_add(1);
    double v = 0.0;
    for (std::size_t d = 0; d < point.size(); ++d) {
      const double diff = point[d] - optimum[d];
      v += diff * diff;
    }
    search::Evaluation e;
    e.metrics["cost"] = v;
    return e;
  };
}

TEST(EvaluationStoreSearch, WarmStoreReproducesColdSearchWithZeroEvals) {
  const std::string path = temp_store_path("warm.jsonl");
  const search::DesignSpace space = bowl_space(2, 17);
  search::Objective objective;
  objective.minimize = "cost";
  search::SearchConfig config;
  config.max_resolution = 3;
  config.regions_per_level = 2;
  config.store_fingerprint = "bowl-2x17";

  std::atomic<std::size_t> cold_calls{0};
  search::SearchResult cold;
  {
    config.store = std::make_shared<EvaluationStore>(path);
    search::MultiresolutionSearch engine(
        space, objective, bowl_eval({0.25, 0.75}, &cold_calls), config);
    cold = engine.run();
  }
  ASSERT_TRUE(cold.found_feasible);
  EXPECT_EQ(cold.store_hits, 0u);
  EXPECT_EQ(cold.divergent_duplicates, 0u);
  EXPECT_GT(cold_calls.load(), 0u);

  // Warm rerun against a fresh store instance on the same journal: every
  // point is covered, so the evaluator must never be invoked and the
  // result must be bit-identical (budget accounting included).
  std::atomic<std::size_t> warm_calls{0};
  search::SearchResult warm;
  {
    config.store = std::make_shared<EvaluationStore>(path);
    search::MultiresolutionSearch engine(
        space, objective, bowl_eval({0.25, 0.75}, &warm_calls), config);
    warm = engine.run();
  }
  EXPECT_EQ(warm_calls.load(), 0u);
  EXPECT_EQ(warm.store_hits, cold.evaluations);
  EXPECT_EQ(warm.evaluations, cold.evaluations);
  EXPECT_EQ(warm.cache_hits, cold.cache_hits);
  EXPECT_EQ(warm.divergent_duplicates, 0u);
  EXPECT_EQ(warm.levels_executed, cold.levels_executed);
  EXPECT_EQ(warm.best.indices, cold.best.indices);
  EXPECT_EQ(warm.best.values, cold.best.values);
  EXPECT_EQ(warm.best.eval.metrics, cold.best.eval.metrics);  // bit-exact
  ASSERT_EQ(warm.history.size(), cold.history.size());
  for (std::size_t i = 0; i < warm.history.size(); ++i) {
    EXPECT_EQ(warm.history[i].indices, cold.history[i].indices);
    EXPECT_EQ(warm.history[i].eval.metrics, cold.history[i].eval.metrics);
  }
  std::remove(path.c_str());
}

TEST(EvaluationStoreSearch, RequiresFingerprintWhenStoreSet) {
  const std::string path = temp_store_path("nofp.jsonl");
  search::SearchConfig config;
  config.store = std::make_shared<EvaluationStore>(path);
  search::Objective objective;
  objective.minimize = "cost";
  std::atomic<std::size_t> calls{0};
  EXPECT_THROW(search::MultiresolutionSearch(bowl_space(1, 5), objective,
                                             bowl_eval({0.5}, &calls), config),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST(EvaluationStoreSearch, DifferentFingerprintsDoNotCrossContaminate) {
  const std::string path = temp_store_path("crossfp.jsonl");
  const search::DesignSpace space = bowl_space(1, 9);
  search::Objective objective;
  objective.minimize = "cost";
  search::SearchConfig config;
  config.max_resolution = 1;
  config.store = std::make_shared<EvaluationStore>(path);
  config.store_fingerprint = "evaluator-A";

  std::atomic<std::size_t> calls_a{0};
  search::MultiresolutionSearch engine_a(space, objective,
                                         bowl_eval({0.25}, &calls_a), config);
  (void)engine_a.run();

  // Same space, different evaluator scope: must re-evaluate everything.
  config.store_fingerprint = "evaluator-B";
  std::atomic<std::size_t> calls_b{0};
  search::MultiresolutionSearch engine_b(space, objective,
                                         bowl_eval({0.75}, &calls_b), config);
  const search::SearchResult b = engine_b.run();
  EXPECT_EQ(b.store_hits, 0u);
  EXPECT_EQ(calls_b.load(), calls_a.load());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace metacore::serve
