// Tests for the sequential (stack-algorithm) decoder baseline.
#include <gtest/gtest.h>

#include "comm/channel.hpp"
#include "comm/sequential.hpp"
#include "comm/viterbi.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

std::vector<int> terminated_block(std::size_t n, int k, std::uint64_t seed) {
  util::Random rng(seed);
  std::vector<int> bits(n);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  for (int i = 0; i < k - 1; ++i) bits[n - 1 - static_cast<std::size_t>(i)] = 0;
  return bits;
}

TEST(SequentialDecoder, DecodesNoiselessBlockExactly) {
  const CodeSpec code = best_rate_half_code(7);
  const auto block = terminated_block(200, 7, 3);
  ConvolutionalEncoder encoder(code);
  BpskModulator mod;
  const auto rx = mod.modulate(encoder.encode(block));
  SequentialDecoder decoder(
      code, Quantizer(QuantizationMethod::Hard, 1, 1.0, 0.5));
  const auto result = decoder.decode(rx);
  ASSERT_TRUE(result.completed);
  ASSERT_EQ(result.bits.size(), block.size() - 6);
  for (std::size_t i = 0; i < result.bits.size(); ++i) {
    EXPECT_EQ(result.bits[i], block[i]) << i;
  }
  // Noiseless: best-first goes straight down the correct path.
  EXPECT_LT(result.extensions_per_bit(), 1.5);
}

TEST(SequentialDecoder, HandlesLongConstraintLengths) {
  // K=9 (256 states) is cheap for sequential decoding: work does not scale
  // with 2^K, unlike Viterbi.
  const CodeSpec code = best_rate_half_code(9);
  const auto block = terminated_block(300, 9, 11);
  ConvolutionalEncoder encoder(code);
  BpskModulator mod;
  AwgnChannel channel(4.0, 1.0, 13);
  const auto rx = channel.transmit(mod.modulate(encoder.encode(block)));
  SequentialDecoder decoder(
      code,
      Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0, channel.noise_sigma()));
  const auto result = decoder.decode(rx);
  ASSERT_TRUE(result.completed);
  int errors = 0;
  for (std::size_t i = 0; i < result.bits.size(); ++i) {
    errors += result.bits[i] != block[i];
  }
  EXPECT_EQ(errors, 0);
  EXPECT_LT(result.extensions_per_bit(), 8.0);
}

TEST(SequentialDecoder, EffortGrowsAsSnrDrops) {
  // The paper's Section 3.1 contrast: variable decoding time. Average
  // extensions per bit must grow markedly as the channel degrades.
  const CodeSpec code = best_rate_half_code(7);
  double effort_good = 0.0, effort_bad = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto block = terminated_block(400, 7, 100 + seed);
    ConvolutionalEncoder encoder(code);
    BpskModulator mod;
    const auto tx = mod.modulate(encoder.encode(block));
    AwgnChannel good(5.0, 1.0, 7 + seed);
    AwgnChannel bad(-2.0, 1.0, 7 + seed);
    SequentialConfig config;
    config.max_extensions_per_bit = 5'000.0;
    SequentialDecoder dec_good(
        code, Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0,
                        good.noise_sigma()),
        config);
    SequentialDecoder dec_bad(
        code, Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0,
                        bad.noise_sigma()),
        config);
    effort_good += dec_good.decode(good.transmit(tx)).extensions_per_bit();
    const auto r = dec_bad.decode(bad.transmit(tx));
    effort_bad += r.completed
                      ? r.extensions_per_bit()
                      : config.max_extensions_per_bit;  // overflow = max work
  }
  EXPECT_GT(effort_bad, 3.0 * effort_good);
}

TEST(SequentialDecoder, OverflowsGracefullyAtVeryLowSnr) {
  const CodeSpec code = best_rate_half_code(7);
  const auto block = terminated_block(300, 7, 77);
  ConvolutionalEncoder encoder(code);
  BpskModulator mod;
  AwgnChannel channel(-6.0, 1.0, 3);
  const auto rx = channel.transmit(mod.modulate(encoder.encode(block)));
  SequentialConfig config;
  config.max_extensions_per_bit = 64.0;
  SequentialDecoder decoder(
      code,
      Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0, channel.noise_sigma()),
      config);
  const auto result = decoder.decode(rx);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.bits.empty());
  EXPECT_LE(result.extensions, static_cast<std::uint64_t>(64.0 * 300) + 1);
}

TEST(SequentialDecoder, MatchesViterbiAtModerateSnr) {
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);
  const auto block = terminated_block(500, 5, 55);
  ConvolutionalEncoder encoder(code);
  BpskModulator mod;
  AwgnChannel channel(4.0, 1.0, 23);
  const auto rx = channel.transmit(mod.modulate(encoder.encode(block)));

  SequentialDecoder sequential(
      code,
      Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0, channel.noise_sigma()));
  const auto seq_result = sequential.decode(rx);
  ASSERT_TRUE(seq_result.completed);

  auto viterbi = make_soft_decoder(trellis, 25, 3,
                                   QuantizationMethod::AdaptiveSoft, 1.0,
                                   channel.noise_sigma());
  const auto vit_bits = viterbi->decode(rx);

  int seq_errors = 0, vit_errors = 0;
  for (std::size_t i = 0; i < seq_result.bits.size(); ++i) {
    seq_errors += seq_result.bits[i] != block[i];
    vit_errors += vit_bits[i] != block[i];
  }
  // Both decode this clean-channel block essentially perfectly.
  EXPECT_LE(seq_errors, 2);
  EXPECT_LE(vit_errors, 2);
}

TEST(SequentialDecoder, Rejections) {
  const CodeSpec code = best_rate_half_code(5);
  const Quantizer q(QuantizationMethod::Hard, 1, 1.0, 0.5);
  SequentialConfig bad;
  bad.bias = 0.0;
  EXPECT_THROW(SequentialDecoder(code, q, bad), std::invalid_argument);
  bad = {};
  bad.max_stack = 2;
  EXPECT_THROW(SequentialDecoder(code, q, bad), std::invalid_argument);

  SequentialDecoder decoder(code, q);
  const std::vector<double> odd(7, 0.0);  // not a multiple of n
  EXPECT_THROW(decoder.decode(odd), std::invalid_argument);
  const std::vector<double> tiny(4, 0.0);  // shorter than the tail
  EXPECT_THROW(decoder.decode(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace metacore::comm
