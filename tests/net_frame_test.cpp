// Wire-layer unit tests: frame round-trip and partial-read reassembly,
// oversized-line discard with the stream staying in sync, raw-member
// extraction, and request/response envelope round-trips.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/protocol.hpp"

namespace metacore::net {
namespace {

std::vector<Frame> drain(FrameDecoder& decoder) {
  std::vector<Frame> frames;
  while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  return frames;
}

TEST(Frame, AppendRoundTrips) {
  std::string wire;
  append_frame(wire, "{\"a\":1}");
  append_frame(wire, "{\"b\":2}");
  EXPECT_EQ(wire, "{\"a\":1}\n{\"b\":2}\n");

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  const auto frames = drain(decoder);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "{\"a\":1}");
  EXPECT_EQ(frames[1].payload, "{\"b\":2}");
  EXPECT_FALSE(frames[0].oversized);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(Frame, AppendRejectsRawNewline) {
  std::string wire;
  EXPECT_THROW(append_frame(wire, "split\nframe"), std::logic_error);
}

TEST(Frame, ByteAtATimeReassembly) {
  const std::string wire = "{\"id\":\"r1\"}\n{\"id\":\"r2\"}\n";
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const char c : wire) {
    decoder.feed(&c, 1);
    while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "{\"id\":\"r1\"}");
  EXPECT_EQ(frames[1].payload, "{\"id\":\"r2\"}");
}

TEST(Frame, SplitAcrossFeedsAtEveryBoundary) {
  const std::string wire = "{\"x\":[1,2,3]}\n";
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(wire.data(), cut);
    EXPECT_FALSE(decoder.next().has_value()) << "cut at " << cut;
    decoder.feed(wire.data() + cut, wire.size() - cut);
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value()) << "cut at " << cut;
    EXPECT_EQ(frame->payload, "{\"x\":[1,2,3]}");
  }
}

TEST(Frame, CrlfAndBlankLinesTolerated) {
  const std::string wire = "\r\n{\"a\":1}\r\n\n{\"b\":2}\n";
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  const auto frames = drain(decoder);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "{\"a\":1}");
  EXPECT_EQ(frames[1].payload, "{\"b\":2}");
}

TEST(Frame, OversizedTerminatedLineIsDroppedNotFatal) {
  FrameDecoder decoder(16);
  const std::string wire = std::string(40, 'x') + "\n{\"ok\":1}\n";
  decoder.feed(wire.data(), wire.size());
  const auto frames = drain(decoder);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_EQ(frames[0].dropped_bytes, 40u);
  EXPECT_FALSE(frames[1].oversized);
  EXPECT_EQ(frames[1].payload, "{\"ok\":1}");
}

TEST(Frame, OversizedUnterminatedLineDiscardsBounded) {
  FrameDecoder decoder(16);
  const std::string chunk(64, 'y');
  // Several feeds with no newline: memory stays bounded (buffer cleared),
  // no frame yet.
  for (int i = 0; i < 4; ++i) {
    decoder.feed(chunk.data(), chunk.size());
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_EQ(decoder.buffered(), 0u);
  }
  // The terminator finally arrives, followed by a good frame.
  const std::string tail = "tail\n{\"ok\":1}\n";
  decoder.feed(tail.data(), tail.size());
  const auto frames = drain(decoder);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_TRUE(frames[0].oversized);
  EXPECT_EQ(frames[0].dropped_bytes, 4u * 64u + 4u);
  EXPECT_EQ(frames[1].payload, "{\"ok\":1}");
}

TEST(RawMember, ExtractsByteExactly) {
  const std::string json =
      "{\"id\":\"a{b}\",\"status\":\"ok\",\"response\":{\"x\":[1,{\"y\":\"}\"}],"
      "\"s\":\"\\\"quoted\\\"\"},\"tail\":3}";
  EXPECT_EQ(extract_raw_member(json, "id"), "\"a{b}\"");
  EXPECT_EQ(extract_raw_member(json, "response"),
            "{\"x\":[1,{\"y\":\"}\"}],\"s\":\"\\\"quoted\\\"\"}");
  EXPECT_EQ(extract_raw_member(json, "tail"), "3");
  EXPECT_EQ(extract_raw_member(json, "absent"), "");
  EXPECT_THROW(extract_raw_member("[1,2]", "x"), std::runtime_error);
}

TEST(RequestJson, QueryRoundTripsCanonically) {
  Request request;
  request.id = "req-42";
  request.kind = RequestKind::Query;
  request.query.kind = serve::QueryKind::Viterbi;
  request.query.throughput_mbps = 2.5;
  request.query.budget.max_evaluations = 48;
  const std::string json = to_json(request);
  const Request parsed = parse_request(json);
  EXPECT_EQ(parsed.id, "req-42");
  EXPECT_EQ(parsed.kind, RequestKind::Query);
  EXPECT_EQ(parsed.query.throughput_mbps, 2.5);
  EXPECT_EQ(parsed.query.budget.max_evaluations, 48u);
  EXPECT_EQ(to_json(parsed), json);
}

TEST(RequestJson, StatsRoundTrips) {
  Request request;
  request.id = "s1";
  request.kind = RequestKind::Stats;
  const Request parsed = parse_request(to_json(request));
  EXPECT_EQ(parsed.kind, RequestKind::Stats);
  EXPECT_EQ(to_json(parsed), to_json(request));
}

TEST(RequestJson, RejectsMalformedEnvelopes) {
  EXPECT_THROW(parse_request("not json at all"), std::runtime_error);
  EXPECT_THROW(parse_request("[1,2,3]"), std::runtime_error);
  // Missing / empty / oversized id.
  EXPECT_THROW(parse_request("{\"kind\":\"stats\"}"), std::runtime_error);
  EXPECT_THROW(parse_request("{\"id\":\"\",\"kind\":\"stats\"}"),
               std::runtime_error);
  EXPECT_THROW(parse_request("{\"id\":\"" + std::string(300, 'a') +
                             "\",\"kind\":\"stats\"}"),
               std::runtime_error);
  // Unknown kind, missing query member, malformed inner query.
  EXPECT_THROW(parse_request("{\"id\":\"x\",\"kind\":\"bogus\"}"),
               std::runtime_error);
  EXPECT_THROW(parse_request("{\"id\":\"x\",\"kind\":\"query\"}"),
               std::runtime_error);
  EXPECT_THROW(
      parse_request(
          "{\"id\":\"x\",\"kind\":\"query\",\"query\":{\"kind\":\"nope\"}}"),
      std::runtime_error);
}

TEST(RequestJson, BestEffortIdRecovery) {
  EXPECT_EQ(best_effort_request_id("{\"id\":\"x\",\"kind\":\"bogus\"}"), "x");
  EXPECT_EQ(best_effort_request_id("total garbage"), "");
  EXPECT_EQ(best_effort_request_id("{\"id\":42}"), "");
}

TEST(ResponseJson, EnvelopesRoundTrip) {
  const std::string payload = "{\"feasible\":true,\"evaluations\":12}";
  const WireResponse ok = parse_wire_response(make_design_response("r1",
                                                                   payload));
  EXPECT_EQ(ok.id, "r1");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.response_json, payload);  // byte-exact
  EXPECT_EQ(ok.stats_json, "");

  const WireResponse stats =
      parse_wire_response(make_stats_response("r2", "{\"queries\":3}"));
  EXPECT_TRUE(stats.ok());
  EXPECT_EQ(stats.stats_json, "{\"queries\":3}");

  const WireResponse rejected =
      parse_wire_response(make_rejected_response("r3", "overloaded", 7));
  EXPECT_TRUE(rejected.rejected());
  EXPECT_EQ(rejected.reason, "overloaded");
  EXPECT_EQ(rejected.queue_depth, 7u);

  const WireResponse error =
      parse_wire_response(make_error_response("", "request: bad frame"));
  EXPECT_EQ(error.status, "error");
  EXPECT_EQ(error.id, "");
  EXPECT_EQ(error.reason, "request: bad frame");

  EXPECT_THROW(parse_wire_response("{\"id\":\"x\",\"status\":\"weird\"}"),
               std::runtime_error);
}

}  // namespace
}  // namespace metacore::net
