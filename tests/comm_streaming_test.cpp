// Streaming-interface properties shared by every decoder: step-by-step
// decoding matches batch decoding, pipeline delays, and flush semantics.
#include <gtest/gtest.h>

#include "comm/ber.hpp"
#include "comm/channel.hpp"
#include "comm/multires_viterbi.hpp"
#include "comm/viterbi.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

struct StreamCase {
  DecoderKind kind;
  int k;
};

class StreamingSweep : public ::testing::TestWithParam<StreamCase> {};

std::vector<double> noisy_stream(const CodeSpec& code, std::size_t bits,
                                 double esn0_db, std::uint64_t seed,
                                 double* sigma) {
  util::Random rng(seed);
  std::vector<int> data(bits);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  ConvolutionalEncoder enc(code);
  BpskModulator mod;
  AwgnChannel channel(esn0_db, 1.0, seed ^ 0xABCD);
  *sigma = channel.noise_sigma();
  return channel.transmit(mod.modulate(enc.encode(data)));
}

TEST_P(StreamingSweep, StepwiseMatchesBatch) {
  const auto [kind, k] = GetParam();
  DecoderSpec spec;
  spec.code = best_rate_half_code(k);
  spec.traceback_depth = 5 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = std::min(4, spec.code.num_states());
  const Trellis trellis(spec.code);

  double sigma = 0.5;
  const auto rx = noisy_stream(spec.code, 700, 2.0, 31, &sigma);

  auto batch = spec.make_decoder(trellis, 1.0, sigma);
  const auto batch_out = batch->decode(rx);

  auto stream = spec.make_decoder(trellis, 1.0, sigma);
  std::vector<int> stream_out;
  for (std::size_t i = 0; i < rx.size(); i += 2) {
    if (auto bit = stream->step({rx.data() + i, 2})) {
      stream_out.push_back(*bit);
    }
  }
  for (int bit : stream->flush()) stream_out.push_back(bit);
  EXPECT_EQ(batch_out, stream_out);
}

TEST_P(StreamingSweep, PipelineDelayIsTracebackDepth) {
  const auto [kind, k] = GetParam();
  DecoderSpec spec;
  spec.code = best_rate_half_code(k);
  spec.traceback_depth = 4 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = std::min(4, spec.code.num_states());
  const Trellis trellis(spec.code);
  auto decoder = spec.make_decoder(trellis, 1.0, 0.5);

  double sigma = 0.5;
  const auto rx = noisy_stream(spec.code, 200, 6.0, 77, &sigma);
  int emitted = 0;
  int steps = 0;
  for (std::size_t i = 0; i < rx.size(); i += 2) {
    ++steps;
    if (decoder->step({rx.data() + i, 2})) {
      ++emitted;
      if (emitted == 1) {
        // First bit emerges exactly after L trellis steps.
        EXPECT_EQ(steps, spec.traceback_depth);
      }
    }
  }
  EXPECT_EQ(emitted, steps - spec.traceback_depth + 1);
  EXPECT_EQ(decoder->flush().size(),
            static_cast<std::size_t>(spec.traceback_depth - 1));
}

TEST_P(StreamingSweep, DecodeOutputLengthMatchesInput) {
  const auto [kind, k] = GetParam();
  DecoderSpec spec;
  spec.code = best_rate_half_code(k);
  spec.traceback_depth = 3 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = std::min(4, spec.code.num_states());
  const Trellis trellis(spec.code);
  auto decoder = spec.make_decoder(trellis, 1.0, 0.5);
  double sigma = 0.5;
  for (std::size_t bits : {1ul, 5ul, 37ul, 200ul}) {
    decoder->reset();
    const auto rx = noisy_stream(spec.code, bits, 6.0, bits, &sigma);
    EXPECT_EQ(decoder->decode(rx).size(), bits) << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDecoders, StreamingSweep,
    ::testing::Values(StreamCase{DecoderKind::Hard, 3},
                      StreamCase{DecoderKind::Hard, 7},
                      StreamCase{DecoderKind::Soft, 5},
                      StreamCase{DecoderKind::Soft, 9},
                      StreamCase{DecoderKind::Multires, 3},
                      StreamCase{DecoderKind::Multires, 5},
                      StreamCase{DecoderKind::Multires, 7}));

}  // namespace
}  // namespace metacore::comm
