// Unit tests for the VLIW IR and block builder.
#include <gtest/gtest.h>

#include "vliw/ir.hpp"

namespace metacore::vliw {
namespace {

TEST(FuClassMapping, OpcodesMapToExpectedUnits) {
  EXPECT_EQ(fu_class(OpCode::Load), FuClass::Mem);
  EXPECT_EQ(fu_class(OpCode::Store), FuClass::Mem);
  EXPECT_EQ(fu_class(OpCode::Mul), FuClass::Mul);
  EXPECT_EQ(fu_class(OpCode::Branch), FuClass::Branch);
  EXPECT_EQ(fu_class(OpCode::Add), FuClass::Alu);
  EXPECT_EQ(fu_class(OpCode::Compare), FuClass::Alu);
  EXPECT_EQ(fu_class(OpCode::Select), FuClass::Alu);
}

TEST(Latencies, LoadsAndMulsAreMultiCycle) {
  EXPECT_GT(default_latency(OpCode::Load), 1);
  EXPECT_GT(default_latency(OpCode::Mul), 1);
  EXPECT_EQ(default_latency(OpCode::Add), 1);
}

TEST(BlockBuilder, EmitsSsaRegisters) {
  BlockBuilder b("test", 1.0);
  const int x = b.live_in();
  const int y = b.emit(OpCode::Add, {x});
  const int z = b.emit(OpCode::Mul, {x, y});
  EXPECT_NE(x, y);
  EXPECT_NE(y, z);
  const BasicBlock block = std::move(b).build();
  EXPECT_EQ(block.ops.size(), 2u);
  EXPECT_EQ(block.ops[1].srcs.size(), 2u);
}

TEST(BasicBlock, CountsByClass) {
  BlockBuilder b("counts", 2.0);
  const int p = b.live_in();
  const int v = b.emit(OpCode::Load, {p});
  const int w = b.emit(OpCode::Add, {v, v});
  b.emit_void(OpCode::Store, {p, w});
  b.emit_void(OpCode::Branch, {});
  const BasicBlock block = std::move(b).build();
  EXPECT_EQ(block.count(FuClass::Mem), 2);
  EXPECT_EQ(block.count(FuClass::Alu), 1);
  EXPECT_EQ(block.count(FuClass::Branch), 1);
  EXPECT_EQ(block.count(FuClass::Mul), 0);
}

TEST(Kernel, StaticAndDynamicOpCounts) {
  Kernel kernel;
  {
    BlockBuilder b("a", 1.0);
    b.emit(OpCode::Add, {b.live_in()});
    kernel.blocks.push_back(std::move(b).build());
  }
  {
    BlockBuilder b("b", 10.0);
    const int x = b.live_in();
    b.emit(OpCode::Add, {x});
    b.emit(OpCode::Sub, {x});
    kernel.blocks.push_back(std::move(b).build());
  }
  EXPECT_EQ(kernel.static_ops(), 3);
  EXPECT_DOUBLE_EQ(kernel.dynamic_ops(), 1.0 + 20.0);
}

TEST(Kernel, ValidateCatchesMalformedOps) {
  Kernel kernel;
  BasicBlock block;
  block.name = "bad";
  block.ops.push_back({OpCode::Add, -1, {0}, ""});  // value op, no dst
  kernel.blocks.push_back(block);
  EXPECT_THROW(kernel.validate(), std::invalid_argument);

  kernel.blocks[0].ops[0] = {OpCode::Store, 3, {0}, ""};  // void op with dst
  EXPECT_THROW(kernel.validate(), std::invalid_argument);

  kernel.blocks[0].ops[0] = {OpCode::Add, 1, {-2}, ""};  // negative source
  EXPECT_THROW(kernel.validate(), std::invalid_argument);

  kernel.blocks[0].ops[0] = {OpCode::Add, 1, {0}, ""};
  kernel.blocks[0].trip_count = -1.0;  // negative trip count
  EXPECT_THROW(kernel.validate(), std::invalid_argument);

  kernel.blocks[0].trip_count = 1.0;
  EXPECT_NO_THROW(kernel.validate());
}

TEST(Kernel, NumVirtualRegs) {
  Kernel kernel;
  BlockBuilder b("r", 1.0);
  const int x = b.live_in();
  const int y = b.emit(OpCode::Add, {x});
  (void)y;
  kernel.blocks.push_back(std::move(b).build());
  EXPECT_EQ(kernel.num_virtual_regs(), 2);
}

TEST(Kernel, ToStringListsBlocksAndOps) {
  Kernel kernel;
  kernel.name = "demo";
  BlockBuilder b("body", 4.0);
  const int x = b.live_in();
  const int y = b.emit(OpCode::Add, {x}, "work");
  b.emit_void(OpCode::Store, {x, y}, "work");
  kernel.blocks.push_back(std::move(b).build());
  kernel.blocks.back().recurrence_mii = 3;
  const std::string text = kernel.to_string();
  EXPECT_NE(text.find("kernel demo"), std::string::npos);
  EXPECT_NE(text.find("block body"), std::string::npos);
  EXPECT_NE(text.find("trips/unit 4.00"), std::string::npos);
  EXPECT_NE(text.find("recurrence MII 3"), std::string::npos);
  EXPECT_NE(text.find("r1 = add r0"), std::string::npos);
  EXPECT_NE(text.find("; work"), std::string::npos);
}

TEST(OpCodeNames, AllDistinct) {
  EXPECT_EQ(to_string(OpCode::Load), "load");
  EXPECT_EQ(to_string(OpCode::Select), "select");
  EXPECT_EQ(to_string(OpCode::Compare), "cmp");
  EXPECT_EQ(to_string(OpCode::Branch), "branch");
}

}  // namespace
}  // namespace metacore::vliw
