// Tests for the Monte-Carlo BER measurement harness.
#include <gtest/gtest.h>

#include "comm/ber.hpp"
#include "util/math.hpp"

namespace metacore::comm {
namespace {

DecoderSpec hard_k3() {
  DecoderSpec spec;
  spec.code = best_rate_half_code(3);
  spec.traceback_depth = 15;
  spec.kind = DecoderKind::Hard;
  return spec;
}

TEST(MeasureBer, DeterministicForSameSeed) {
  BerRunConfig cfg;
  cfg.max_bits = 20'000;
  cfg.min_bits = 20'000;
  cfg.max_errors = 1'000'000;
  const auto a = measure_ber(hard_k3(), 2.0, cfg);
  const auto b = measure_ber(hard_k3(), 2.0, cfg);
  EXPECT_EQ(a.errors.successes, b.errors.successes);
  EXPECT_EQ(a.errors.trials, b.errors.trials);
}

TEST(MeasureBer, DifferentSeedsDiffer) {
  BerRunConfig cfg;
  cfg.max_bits = 20'000;
  cfg.min_bits = 20'000;
  cfg.max_errors = 1'000'000;
  BerRunConfig cfg2 = cfg;
  cfg2.seed = 999;
  const auto a = measure_ber(hard_k3(), 1.0, cfg);
  const auto b = measure_ber(hard_k3(), 1.0, cfg2);
  EXPECT_NE(a.errors.successes, b.errors.successes);
}

TEST(MeasureBer, BerDecreasesWithSnr) {
  BerRunConfig cfg;
  cfg.max_bits = 40'000;
  cfg.min_bits = 40'000;
  cfg.max_errors = 1'000'000;
  const auto curve = measure_ber_curve(hard_k3(), {0.0, 2.0, 4.0}, cfg);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_GT(curve[0].ber(), curve[1].ber());
  EXPECT_GT(curve[1].ber(), curve[2].ber());
}

TEST(MeasureBer, CodedBeatsUncodedAtModerateSnr) {
  // At Es/N0 = 3 dB (rate 1/2 -> Eb/N0 = 6 dB), the K=5 code must beat
  // uncoded BPSK at the same Eb/N0 by a wide margin.
  DecoderSpec spec;
  spec.code = best_rate_half_code(5);
  spec.traceback_depth = 25;
  spec.kind = DecoderKind::Soft;
  spec.high_res_bits = 3;
  BerRunConfig cfg;
  cfg.max_bits = 60'000;
  cfg.min_bits = 60'000;
  cfg.max_errors = 1'000'000;
  const double coded = measure_ber(spec, 3.0, cfg).ber();
  const double uncoded = util::bpsk_ber(util::db_to_linear(6.0));
  EXPECT_LT(coded, uncoded / 2.0);
}

TEST(MeasureBer, EarlyTerminationStopsAtErrorBudget) {
  BerRunConfig cfg;
  cfg.max_bits = 10'000'000;
  cfg.min_bits = 4'096;
  cfg.max_errors = 50;
  // At very low SNR the decoder fails constantly, so the error budget
  // terminates the run long before max_bits.
  const auto point = measure_ber(hard_k3(), -3.0, cfg);
  EXPECT_GE(point.errors.successes, 50u);
  EXPECT_LT(point.errors.trials, 200'000u);
}

TEST(MeasureBer, DecisionStoppingPassesClearPointsEarly) {
  // K=5 soft at 4 dB has BER ~ 1e-6; against a 1e-3 threshold the run
  // should stop long before the 2M-bit cap.
  DecoderSpec spec;
  spec.code = best_rate_half_code(5);
  spec.traceback_depth = 25;
  spec.kind = DecoderKind::Soft;
  spec.high_res_bits = 3;
  BerRunConfig cfg;
  cfg.max_bits = 2'000'000;
  cfg.min_bits = 8'192;
  cfg.max_errors = 1u << 30;
  cfg.decision_ber = 1e-3;
  const auto point = measure_ber(spec, 4.0, cfg);
  EXPECT_LT(point.errors.trials, 100'000u);
  // And the decision is a confident pass.
  EXPECT_LT(point.errors.wilson().high, 1e-3);
}

TEST(MeasureBer, DecisionStoppingFailsClearPointsEarly) {
  // Hard K=3 at -2 dB is far above a 1e-4 threshold.
  DecoderSpec spec = hard_k3();
  BerRunConfig cfg;
  cfg.max_bits = 5'000'000;
  cfg.min_bits = 8'192;
  cfg.max_errors = 1u << 30;
  cfg.decision_ber = 1e-4;
  const auto point = measure_ber(spec, -2.0, cfg);
  EXPECT_LT(point.errors.trials, 60'000u);
  EXPECT_GT(point.errors.wilson().low, 1e-4);
}

TEST(MeasureBer, DecisionStoppingOffByDefault) {
  DecoderSpec spec = hard_k3();
  BerRunConfig cfg;
  cfg.max_bits = 30'000;
  cfg.min_bits = 30'000;
  cfg.max_errors = 1u << 30;
  const auto point = measure_ber(spec, 4.0, cfg);  // clear pass, but no rule
  EXPECT_EQ(point.errors.trials, 30'000u);
}

TEST(MeasureBer, RejectsZeroBudget) {
  BerRunConfig cfg;
  cfg.max_bits = 0;
  EXPECT_THROW(measure_ber(hard_k3(), 1.0, cfg), std::invalid_argument);
}

TEST(DecoderSpec, FactoryProducesRequestedKind) {
  const Trellis trellis(best_rate_half_code(5));
  DecoderSpec spec;
  spec.code = best_rate_half_code(5);
  spec.traceback_depth = 20;

  spec.kind = DecoderKind::Hard;
  EXPECT_NE(dynamic_cast<ViterbiDecoder*>(
                spec.make_decoder(trellis, 1.0, 0.5).get()),
            nullptr);
  spec.kind = DecoderKind::Multires;
  spec.num_high_res_paths = 4;
  EXPECT_NE(dynamic_cast<MultiresViterbiDecoder*>(
                spec.make_decoder(trellis, 1.0, 0.5).get()),
            nullptr);
}

TEST(DecoderSpec, LabelsAreDescriptive) {
  DecoderSpec spec;
  spec.code = best_rate_half_code(5);
  spec.traceback_depth = 25;
  spec.kind = DecoderKind::Multires;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 8;
  spec.normalization_terms = 2;
  const std::string label = spec.label();
  EXPECT_NE(label.find("multires"), std::string::npos);
  EXPECT_NE(label.find("K=5"), std::string::npos);
  EXPECT_NE(label.find("R1=1"), std::string::npos);
  EXPECT_NE(label.find("R2=3"), std::string::npos);
  EXPECT_NE(label.find("M=8"), std::string::npos);
  EXPECT_NE(label.find("N=2"), std::string::npos);
}

class BerKindSweep : public ::testing::TestWithParam<DecoderKind> {};

TEST_P(BerKindSweep, MonotoneInSnr) {
  DecoderSpec spec;
  spec.code = best_rate_half_code(5);
  spec.traceback_depth = 25;
  spec.kind = GetParam();
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 4;
  BerRunConfig cfg;
  cfg.max_bits = 30'000;
  cfg.min_bits = 30'000;
  cfg.max_errors = 1'000'000;
  const auto curve = measure_ber_curve(spec, {-1.0, 1.5, 4.0}, cfg);
  EXPECT_GT(curve[0].ber(), curve[1].ber());
  EXPECT_GE(curve[1].ber(), curve[2].ber());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BerKindSweep,
                         ::testing::Values(DecoderKind::Hard,
                                           DecoderKind::Soft,
                                           DecoderKind::Multires));

}  // namespace
}  // namespace metacore::comm
