// Tests for the VLIW machine description and configuration family.
#include <gtest/gtest.h>

#include "vliw/machine.hpp"

namespace metacore::vliw {
namespace {

TEST(MachineConfig, SlotsPerClass) {
  MachineConfig cfg;
  cfg.num_alus = 4;
  cfg.num_multipliers = 2;
  cfg.num_memory_ports = 3;
  cfg.num_branch_units = 1;
  EXPECT_EQ(cfg.slots(FuClass::Alu), 4);
  EXPECT_EQ(cfg.slots(FuClass::Mul), 2);
  EXPECT_EQ(cfg.slots(FuClass::Mem), 3);
  EXPECT_EQ(cfg.slots(FuClass::Branch), 1);
  EXPECT_EQ(cfg.issue_width(), 10);
}

TEST(MachineConfig, LabelEncodesShape) {
  MachineConfig cfg;
  cfg.num_alus = 2;
  cfg.num_multipliers = 1;
  cfg.num_memory_ports = 1;
  cfg.num_branch_units = 1;
  cfg.register_file_size = 32;
  cfg.datapath_bits = 16;
  EXPECT_EQ(cfg.label(), "2A1M1P1B/r32/w16");
}

TEST(MachineConfig, Validation) {
  MachineConfig cfg;
  cfg.num_alus = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.register_file_size = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.datapath_bits = 128;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(MachineConfig{}.validate());
}

TEST(StandardConfigFamily, OrderedSmallToWide) {
  const auto family = standard_config_family(16);
  ASSERT_GE(family.size(), 4u);
  for (std::size_t i = 1; i < family.size(); ++i) {
    EXPECT_GE(family[i].issue_width(), family[i - 1].issue_width());
  }
  for (const auto& cfg : family) {
    EXPECT_EQ(cfg.datapath_bits, 16);
    EXPECT_NO_THROW(cfg.validate());
  }
  // The family must include a multiplier-less minimal core (hard-decision
  // decoders need no multiplier) and a multi-ported wide engine.
  EXPECT_EQ(family.front().num_multipliers, 0);
  EXPECT_GE(family.back().num_memory_ports, 2);
}

}  // namespace
}  // namespace metacore::vliw
