// Tests for saturating Q-format fixed-point arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "util/fixed.hpp"

namespace metacore::util {
namespace {

TEST(QFormat, RangeAndResolution) {
  const QFormat q{16, 14};  // Q1.14
  EXPECT_EQ(q.integer_bits(), 1);
  EXPECT_DOUBLE_EQ(q.resolution(), 1.0 / 16384.0);
  EXPECT_DOUBLE_EQ(q.min_value(), -2.0);
  EXPECT_NEAR(q.max_value(), 2.0 - 1.0 / 16384.0, 1e-12);
  EXPECT_EQ(q.label(), "Q1.14");
}

TEST(QFormat, Validation) {
  EXPECT_THROW((QFormat{1, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((QFormat{16, 16}).validate(), std::invalid_argument);
  EXPECT_THROW((QFormat{16, -1}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((QFormat{8, 6}).validate());
}

TEST(Fixed, QuantizesRoundToNearest) {
  const QFormat q{8, 4};  // resolution 1/16
  EXPECT_DOUBLE_EQ(Fixed(0.5, q).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Fixed(0.53, q).to_double(), 0.5);      // 8.48 lsb -> 8
  EXPECT_DOUBLE_EQ(Fixed(0.545, q).to_double(), 0.5625);  // 8.72 lsb -> 9
  EXPECT_DOUBLE_EQ(Fixed(0.03, q).to_double(), 0.0);      // 0.48 lsb -> 0
  EXPECT_DOUBLE_EQ(Fixed(-0.53, q).to_double(), -0.5);
}

TEST(Fixed, QuantizationErrorBoundedByHalfLsb) {
  const QFormat q{12, 9};
  for (double v = -3.0; v <= 3.0; v += 0.0371) {
    const Fixed f(v, q);
    if (!f.saturated()) {
      EXPECT_LE(std::abs(f.to_double() - v), q.resolution() / 2 + 1e-15) << v;
    }
  }
}

TEST(Fixed, SaturatesOutOfRange) {
  const QFormat q{8, 6};  // range [-2, ~2)
  const Fixed over(5.0, q);
  EXPECT_TRUE(over.saturated());
  EXPECT_NEAR(over.to_double(), q.max_value(), 1e-12);
  const Fixed under(-5.0, q);
  EXPECT_TRUE(under.saturated());
  EXPECT_DOUBLE_EQ(under.to_double(), -2.0);
}

TEST(Fixed, AddAndSubSaturate) {
  const QFormat q{8, 6};
  const Fixed a(1.5, q), b(1.0, q);
  const Fixed sum = a.add(b);  // 2.5 > max
  EXPECT_TRUE(sum.saturated());
  EXPECT_NEAR(sum.to_double(), q.max_value(), 1e-12);
  const Fixed diff = a.sub(b);
  EXPECT_FALSE(diff.saturated());
  EXPECT_DOUBLE_EQ(diff.to_double(), 0.5);
  const Fixed neg = Fixed(-1.5, q).sub(b);  // -2.5 < min
  EXPECT_TRUE(neg.saturated());
}

TEST(Fixed, MulRoundsIntoOwnFormat) {
  const QFormat sig{16, 12};
  const QFormat coef{16, 14};
  const Fixed x(0.75, sig);
  const Fixed c(0.5, coef);
  const Fixed y = x.mul(c);
  EXPECT_DOUBLE_EQ(y.to_double(), 0.375);
  EXPECT_EQ(y.format().frac_bits, 12);
}

TEST(Fixed, MulSaturates) {
  const QFormat q{8, 4};  // range [-8, 8)
  const Fixed a(7.0, q), b(3.0, q);
  const Fixed y = a.mul(b);  // 21 out of range
  EXPECT_TRUE(y.saturated());
  EXPECT_NEAR(y.to_double(), q.max_value(), 1e-9);
}

TEST(Fixed, FormatMismatchThrows) {
  const Fixed a(0.5, QFormat{16, 14});
  const Fixed b(0.5, QFormat{16, 12});
  EXPECT_THROW(a.add(b), std::invalid_argument);
  EXPECT_THROW(a.sub(b), std::invalid_argument);
}

TEST(Fixed, RejectsNonFinite) {
  EXPECT_THROW(Fixed(std::nan(""), QFormat{16, 14}), std::invalid_argument);
}

}  // namespace
}  // namespace metacore::util
