// End-to-end tests for the epoll TCP design-query server on loopback:
// socket answers byte-identical to in-process DesignService answers,
// multiplexed out-of-order responses, malformed/oversized-frame survival,
// overload rejection under a tiny admission quota, graceful drain with
// queries in flight, and survival of clients that vanish mid-query.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"

namespace metacore::net {
namespace {

using namespace std::chrono_literals;

std::string temp_store_path(const char* name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// Cheap Viterbi query (loose BER target, tiny budget) — seconds of CPU at
/// most, milliseconds when replayed from a warm store.
serve::DesignQuery tiny_query(double mbps = 1.0) {
  serve::DesignQuery query;
  query.kind = serve::QueryKind::Viterbi;
  query.target_ber = 1e-2;
  query.esn0_db = 1.0;
  query.throughput_mbps = mbps;
  query.ber_shards = 2;
  query.budget.initial_points_per_dim = 2;
  query.budget.max_resolution = 0;
  query.budget.regions_per_level = 1;
  query.budget.max_evaluations = 16;
  return query;
}

/// A deliberately slower query to hold the dispatcher busy.
serve::DesignQuery slow_query() {
  serve::DesignQuery query = tiny_query(7.0);
  query.ber_shards = 4;
  query.budget.initial_points_per_dim = 3;
  query.budget.max_evaluations = 96;
  return query;
}

ServerConfig loopback_config() {
  ServerConfig config;
  config.bind_address = "127.0.0.1";
  config.port = 0;  // ephemeral
  return config;
}

bool wait_until(const std::function<bool()>& condition,
                std::chrono::milliseconds timeout = 30s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return condition();
}

TEST(DesignServer, StartsOnEphemeralPortAndStopsIdempotently) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  EXPECT_EQ(server.port(), 0);
  server.start();
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());
  server.shutdown();
  EXPECT_FALSE(server.running());
  server.shutdown();  // idempotent
}

TEST(DesignServer, StatsRequestCarriesServerAndServiceCounters) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  const WireResponse response = client.stats();
  ASSERT_TRUE(response.ok()) << response.reason;
  // Both counter families ride in one document — no side channel.
  EXPECT_NE(response.stats_json.find("\"server\":"), std::string::npos);
  EXPECT_NE(response.stats_json.find("\"service\":"), std::string::npos);
  EXPECT_NE(response.stats_json.find("\"coalesced\":"), std::string::npos);
  EXPECT_NE(response.stats_json.find("\"store\":{\"attached\":false}"),
            std::string::npos);
  EXPECT_NE(response.stats_json.find("\"accepted_connections\":1"),
            std::string::npos);
  server.shutdown();
}

TEST(DesignServer, SocketAnswerIsByteIdenticalToInProcess) {
  const serve::DesignQuery query = tiny_query();

  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());
  const WireResponse wire = client.query(query);
  ASSERT_TRUE(wire.ok()) << wire.reason;
  server.shutdown();

  // A fresh in-process service (same no-store starting state) must produce
  // exactly the bytes that crossed the wire.
  serve::DesignService reference;
  EXPECT_EQ(wire.response_json, serve::to_json(reference.submit(query)));
}

TEST(DesignServer, MultiplexedResponsesMatchTheirIds) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());

  // Three in-flight requests on one connection, collected in reverse
  // order: ids pair responses to requests, not arrival order.
  client.send_query("q-a", tiny_query(1.0));
  client.send_query("q-b", tiny_query(1.0));  // identical: coalesces
  client.send_stats("q-c");
  const WireResponse c = client.recv_matching("q-c");
  const WireResponse b = client.recv_matching("q-b");
  const WireResponse a = client.recv_matching("q-a");
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(c.ok());
  // The two identical queries were deduplicated into one search and must
  // return byte-identical payloads.
  EXPECT_EQ(a.response_json, b.response_json);

  const serve::ServiceStats stats = service->stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_GE(stats.coalesced + (stats.searches_launched > 1 ? 1u : 0u), 1u);
  server.shutdown();
}

TEST(DesignServer, MalformedFramesGetErrorsAndTheConnectionSurvives) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());

  client.send_raw("this is not json");
  WireResponse err = client.recv_response();
  EXPECT_EQ(err.status, "error");
  EXPECT_EQ(err.id, "");
  EXPECT_FALSE(err.reason.empty());

  // Valid JSON, invalid envelope: the id is still recovered.
  client.send_raw("{\"id\":\"x9\",\"kind\":\"bogus\"}");
  err = client.recv_response();
  EXPECT_EQ(err.status, "error");
  EXPECT_EQ(err.id, "x9");

  // Same connection keeps working afterwards.
  const WireResponse stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.stats_json.find("\"malformed_frames\":2"),
            std::string::npos);
  server.shutdown();
}

TEST(DesignServer, OversizedFramesAreDroppedAndTheConnectionSurvives) {
  ServerConfig config = loopback_config();
  config.max_frame_bytes = 512;
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, config);
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());

  client.send_raw(std::string(4096, 'z'));
  const WireResponse err = client.recv_response();
  EXPECT_EQ(err.status, "error");
  EXPECT_NE(err.reason.find("exceeds"), std::string::npos);

  const WireResponse stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.stats_json.find("\"oversized_frames\":1"),
            std::string::npos);
  server.shutdown();
}

TEST(DesignServer, ConcurrentConnectionsAreByteIdenticalAtAnyWidth) {
  const std::string store_path = temp_store_path("net_determinism.store");
  auto store = std::make_shared<serve::EvaluationStore>(store_path);

  // Four distinct queries, warmed into the store once; the reference bytes
  // are what a fresh in-process service answers out of the warm store.
  std::vector<serve::DesignQuery> unique;
  for (const double mbps : {1.0, 2.0, 3.0, 4.0}) unique.push_back(tiny_query(mbps));
  {
    serve::ServiceConfig config;
    config.store = store;
    serve::DesignService warmer(config);
    for (const auto& query : unique) warmer.submit(query);
  }
  std::vector<std::string> reference(unique.size());
  {
    serve::ServiceConfig config;
    config.store = store;
    serve::DesignService ref_service(config);
    for (std::size_t i = 0; i < unique.size(); ++i) {
      reference[i] = serve::to_json(ref_service.submit(unique[i]));
    }
  }

  // The mixed query set: 32 queries cycling over the four uniques.
  constexpr std::size_t kQueries = 32;
  for (const std::size_t connections : {std::size_t{1}, std::size_t{4},
                                        std::size_t{16}}) {
    serve::ServiceConfig config;
    config.store = store;
    auto service = std::make_shared<serve::DesignService>(config);
    DesignServer server(service, loopback_config());
    server.start();

    std::vector<std::vector<std::string>> got(connections);
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < connections; ++c) {
      workers.emplace_back([&, c] {
        DesignClient client;
        client.connect("127.0.0.1", server.port());
        std::vector<std::string> ids;
        for (std::size_t q = c; q < kQueries; q += connections) {
          const std::string id = "w" + std::to_string(q);
          client.send_query(id, unique[q % unique.size()]);
          ids.push_back(id);
        }
        for (const std::string& id : ids) {
          const WireResponse response = client.recv_matching(id);
          ASSERT_TRUE(response.ok()) << response.reason;
          got[c].push_back(response.response_json);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    server.shutdown();

    for (std::size_t c = 0; c < connections; ++c) {
      std::size_t k = 0;
      for (std::size_t q = c; q < kQueries; q += connections, ++k) {
        EXPECT_EQ(got[c][k], reference[q % unique.size()])
            << "connections=" << connections << " query=" << q;
      }
    }
  }
  std::remove(store_path.c_str());
}

TEST(DesignServer, OverloadReturnsStructuredRejections) {
  ServerConfig config = loopback_config();
  config.max_pending_queries = 1;  // tiny admission quota
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, config);
  server.start();

  DesignClient busy;
  busy.connect("127.0.0.1", server.port());
  busy.send_query("slow", slow_query());
  // Wait until the dispatcher is actually inside submit_batch, so the
  // queue stays occupied by whatever we send next.
  ASSERT_TRUE(wait_until([&] { return server.stats().in_flight >= 1; }));

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  client.send_query("fill", tiny_query(2.0));  // occupies the 1-slot queue
  for (int i = 0; i < 6; ++i) {
    client.send_query("burst" + std::to_string(i), tiny_query(3.0));
  }

  std::size_t rejected = 0;
  std::size_t ok = 0;
  for (int i = 0; i < 7; ++i) {
    const WireResponse response = client.recv_response();
    if (response.rejected()) {
      EXPECT_EQ(response.reason, "overloaded");
      ++rejected;
    } else {
      ASSERT_TRUE(response.ok()) << response.reason;
      ++ok;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(rejected + ok, 7u);
  // The slow query itself completes normally.
  EXPECT_TRUE(busy.recv_matching("slow").ok());
  EXPECT_GE(server.stats().queries_rejected, rejected);
  server.shutdown();
}

TEST(DesignServer, GracefulDrainFinishesInFlightAndFlushesTheStore) {
  const std::string store_path = temp_store_path("net_drain.store");
  serve::ServiceConfig service_config;
  service_config.store_path = store_path;
  auto service = std::make_shared<serve::DesignService>(service_config);
  DesignServer server(service, loopback_config());
  server.start();

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  std::vector<std::string> ids;
  for (const double mbps : {1.0, 2.0, 3.0, 4.0}) {
    const std::string id = "d" + std::to_string(static_cast<int>(mbps));
    client.send_query(id, tiny_query(mbps));
    ids.push_back(id);
  }
  ASSERT_TRUE(wait_until([&] {
    const ServerStats stats = server.stats();
    return stats.in_flight + stats.queue_depth >= 1;
  }));

  // Drain while the batch is mid-flight: every admitted query must still
  // be answered before the server closes the connection. The join guard
  // keeps an unexpected client-side throw from terminating the process
  // with the drainer still joinable.
  struct JoinGuard {
    std::thread thread;
    ~JoinGuard() {
      if (thread.joinable()) thread.join();
    }
  } drainer{std::thread([&] { server.shutdown(); })};
  for (const std::string& id : ids) {
    const WireResponse response = client.recv_matching(id);
    EXPECT_TRUE(response.ok()) << response.reason;
  }
  EXPECT_THROW(client.recv_response(), std::runtime_error);  // clean EOF
  drainer.thread.join();
  EXPECT_FALSE(server.running());

  // New connections are refused after drain.
  DesignClient late;
  EXPECT_THROW(late.connect("127.0.0.1", server.port(), 2000),
               std::runtime_error);

  // The journaled evaluations survived the drain: a fresh store replays
  // them.
  serve::EvaluationStore reopened(store_path);
  EXPECT_GT(reopened.size(), 0u);
  std::remove(store_path.c_str());
}

TEST(DesignServer, ClientVanishingMidQueryDoesNotKillTheServer) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();

  {
    DesignClient doomed;
    doomed.connect("127.0.0.1", server.port());
    doomed.send_query("gone", slow_query());
    ASSERT_TRUE(wait_until([&] { return server.stats().in_flight >= 1; }));
    doomed.close();  // vanish while the query is executing
  }

  // The query still completes (and would have fed the store); only the
  // delivery is counted as dropped — and the server keeps serving.
  ASSERT_TRUE(
      wait_until([&] { return server.stats().dropped_responses >= 1; }));
  DesignClient client;
  client.connect("127.0.0.1", server.port());
  const WireResponse response = client.query(tiny_query());
  EXPECT_TRUE(response.ok()) << response.reason;
  server.shutdown();
  EXPECT_GE(server.stats().dropped_responses, 1u);
}

}  // namespace
}  // namespace metacore::net
