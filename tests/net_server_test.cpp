// End-to-end tests for the epoll TCP design-query server on loopback:
// socket answers byte-identical to in-process DesignService answers,
// multiplexed out-of-order responses, malformed/oversized-frame survival,
// overload rejection under a tiny admission quota, graceful drain with
// queries in flight, and survival of clients that vanish mid-query.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"

namespace metacore::net {
namespace {

using namespace std::chrono_literals;

std::string temp_store_path(const char* name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  // Clear any sharded layout (`path.d/`) a previous run under
  // METACORE_STORE_SHARDS may have left behind.
  std::error_code ec;
  std::filesystem::remove_all(path + ".d", ec);
  return path;
}

/// Cheap Viterbi query (loose BER target, tiny budget) — seconds of CPU at
/// most, milliseconds when replayed from a warm store.
serve::DesignQuery tiny_query(double mbps = 1.0) {
  serve::DesignQuery query;
  query.kind = serve::QueryKind::Viterbi;
  query.target_ber = 1e-2;
  query.esn0_db = 1.0;
  query.throughput_mbps = mbps;
  query.ber_shards = 2;
  query.budget.initial_points_per_dim = 2;
  query.budget.max_resolution = 0;
  query.budget.regions_per_level = 1;
  query.budget.max_evaluations = 16;
  return query;
}

/// A deliberately slower query to hold the dispatcher busy.
serve::DesignQuery slow_query() {
  serve::DesignQuery query = tiny_query(7.0);
  query.ber_shards = 4;
  query.budget.initial_points_per_dim = 3;
  query.budget.max_evaluations = 96;
  return query;
}

ServerConfig loopback_config() {
  ServerConfig config;
  config.bind_address = "127.0.0.1";
  config.port = 0;  // ephemeral
  return config;
}

bool wait_until(const std::function<bool()>& condition,
                std::chrono::milliseconds timeout = 30s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return condition();
}

TEST(DesignServer, StartsOnEphemeralPortAndStopsIdempotently) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  EXPECT_EQ(server.port(), 0);
  server.start();
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());
  server.shutdown();
  EXPECT_FALSE(server.running());
  server.shutdown();  // idempotent
}

TEST(DesignServer, StatsRequestCarriesServerAndServiceCounters) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  const WireResponse response = client.stats();
  ASSERT_TRUE(response.ok()) << response.reason;
  // Both counter families ride in one document — no side channel.
  EXPECT_NE(response.stats_json.find("\"server\":"), std::string::npos);
  EXPECT_NE(response.stats_json.find("\"service\":"), std::string::npos);
  EXPECT_NE(response.stats_json.find("\"coalesced\":"), std::string::npos);
  EXPECT_NE(response.stats_json.find("\"store\":{\"attached\":false}"),
            std::string::npos);
  EXPECT_NE(response.stats_json.find("\"accepted_connections\":1"),
            std::string::npos);
  server.shutdown();
}

TEST(DesignServer, SocketAnswerIsByteIdenticalToInProcess) {
  const serve::DesignQuery query = tiny_query();

  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());
  const WireResponse wire = client.query(query);
  ASSERT_TRUE(wire.ok()) << wire.reason;
  server.shutdown();

  // A fresh in-process service (same no-store starting state) must produce
  // exactly the bytes that crossed the wire.
  serve::DesignService reference;
  EXPECT_EQ(wire.response_json, serve::to_json(reference.submit(query)));
}

TEST(DesignServer, MultiplexedResponsesMatchTheirIds) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());

  // Three in-flight requests on one connection, collected in reverse
  // order: ids pair responses to requests, not arrival order.
  client.send_query("q-a", tiny_query(1.0));
  client.send_query("q-b", tiny_query(1.0));  // identical: coalesces
  client.send_stats("q-c");
  const WireResponse c = client.recv_matching("q-c");
  const WireResponse b = client.recv_matching("q-b");
  const WireResponse a = client.recv_matching("q-a");
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(c.ok());
  // The two identical queries were deduplicated into one search and must
  // return byte-identical payloads.
  EXPECT_EQ(a.response_json, b.response_json);

  const serve::ServiceStats stats = service->stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_GE(stats.coalesced + (stats.searches_launched > 1 ? 1u : 0u), 1u);
  server.shutdown();
}

TEST(DesignServer, MalformedFramesGetErrorsAndTheConnectionSurvives) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());

  client.send_raw("this is not json");
  WireResponse err = client.recv_response();
  EXPECT_EQ(err.status, "error");
  EXPECT_EQ(err.id, "");
  EXPECT_FALSE(err.reason.empty());

  // Valid JSON, invalid envelope: the id is still recovered.
  client.send_raw("{\"id\":\"x9\",\"kind\":\"bogus\"}");
  err = client.recv_response();
  EXPECT_EQ(err.status, "error");
  EXPECT_EQ(err.id, "x9");

  // Same connection keeps working afterwards.
  const WireResponse stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.stats_json.find("\"malformed_frames\":2"),
            std::string::npos);
  server.shutdown();
}

TEST(DesignServer, OversizedFramesAreDroppedAndTheConnectionSurvives) {
  ServerConfig config = loopback_config();
  config.max_frame_bytes = 512;
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, config);
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());

  client.send_raw(std::string(4096, 'z'));
  const WireResponse err = client.recv_response();
  EXPECT_EQ(err.status, "error");
  EXPECT_NE(err.reason.find("exceeds"), std::string::npos);

  const WireResponse stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.stats_json.find("\"oversized_frames\":1"),
            std::string::npos);
  server.shutdown();
}

TEST(DesignServer, ConcurrentConnectionsAreByteIdenticalAtAnyWidth) {
  const std::string store_path = temp_store_path("net_determinism.store");
  auto store = std::make_shared<serve::EvaluationStore>(store_path);

  // Four distinct queries, warmed into the store once; the reference bytes
  // are what a fresh in-process service answers out of the warm store.
  std::vector<serve::DesignQuery> unique;
  for (const double mbps : {1.0, 2.0, 3.0, 4.0}) unique.push_back(tiny_query(mbps));
  {
    serve::ServiceConfig config;
    config.store = store;
    serve::DesignService warmer(config);
    for (const auto& query : unique) warmer.submit(query);
  }
  std::vector<std::string> reference(unique.size());
  {
    serve::ServiceConfig config;
    config.store = store;
    serve::DesignService ref_service(config);
    for (std::size_t i = 0; i < unique.size(); ++i) {
      reference[i] = serve::to_json(ref_service.submit(unique[i]));
    }
  }

  // The mixed query set: 32 queries cycling over the four uniques.
  constexpr std::size_t kQueries = 32;
  for (const std::size_t connections : {std::size_t{1}, std::size_t{4},
                                        std::size_t{16}}) {
    serve::ServiceConfig config;
    config.store = store;
    auto service = std::make_shared<serve::DesignService>(config);
    DesignServer server(service, loopback_config());
    server.start();

    std::vector<std::vector<std::string>> got(connections);
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < connections; ++c) {
      workers.emplace_back([&, c] {
        DesignClient client;
        client.connect("127.0.0.1", server.port());
        std::vector<std::string> ids;
        for (std::size_t q = c; q < kQueries; q += connections) {
          const std::string id = "w" + std::to_string(q);
          client.send_query(id, unique[q % unique.size()]);
          ids.push_back(id);
        }
        for (const std::string& id : ids) {
          const WireResponse response = client.recv_matching(id);
          ASSERT_TRUE(response.ok()) << response.reason;
          got[c].push_back(response.response_json);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    server.shutdown();

    for (std::size_t c = 0; c < connections; ++c) {
      std::size_t k = 0;
      for (std::size_t q = c; q < kQueries; q += connections, ++k) {
        EXPECT_EQ(got[c][k], reference[q % unique.size()])
            << "connections=" << connections << " query=" << q;
      }
    }
  }
  std::remove(store_path.c_str());
}

TEST(DesignServer, WorkerShardConnectionMatrixIsByteIdentical) {
  const std::string store_path = temp_store_path("net_matrix.store");

  // Four distinct queries, warmed once; the reference bytes are what a
  // fresh in-process service answers out of the warm store.
  std::vector<serve::DesignQuery> unique;
  for (const double mbps : {1.0, 2.0, 3.0, 4.0}) {
    unique.push_back(tiny_query(mbps));
  }
  {
    serve::ServiceConfig config;
    config.store = std::make_shared<serve::EvaluationStore>(store_path);
    serve::DesignService warmer(config);
    for (const auto& query : unique) warmer.submit(query);
  }
  std::vector<std::string> reference(unique.size());
  {
    serve::ServiceConfig config;
    config.store = std::make_shared<serve::EvaluationStore>(store_path);
    serve::DesignService ref_service(config);
    for (std::size_t i = 0; i < unique.size(); ++i) {
      reference[i] = serve::to_json(ref_service.submit(unique[i]));
    }
  }

  // The full decomposition matrix: every workers x shards x connections x
  // wire-mode point must produce exactly the reference bytes for every
  // query. Odd connections negotiate the MCB1 binary mode (so both wire
  // modes run concurrently against one server); a binary answer decodes
  // and re-serializes to the same canonical bytes.
  constexpr std::size_t kQueries = 16;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      serve::StoreConfig store_config;
      store_config.shards = shards;
      serve::ServiceConfig service_config;
      service_config.store = std::make_shared<serve::EvaluationStore>(
          store_path, store_config);
      auto service = std::make_shared<serve::DesignService>(service_config);
      ServerConfig server_config = loopback_config();
      server_config.search_workers = workers;
      DesignServer server(service, server_config);
      server.start();

      for (const std::size_t connections : {std::size_t{1}, std::size_t{4},
                                            std::size_t{16}}) {
        std::vector<std::vector<std::string>> got(connections);
        std::vector<std::thread> senders;
        for (std::size_t c = 0; c < connections; ++c) {
          senders.emplace_back([&, c] {
            DesignClient client;
            client.connect("127.0.0.1", server.port());
            if (c % 2 == 1) {
              ASSERT_TRUE(client.negotiate_binary());
            }
            std::vector<std::string> ids;
            for (std::size_t q = c; q < kQueries; q += connections) {
              const std::string id = "m" + std::to_string(q);
              client.send_query(id, unique[q % unique.size()]);
              ids.push_back(id);
            }
            for (const std::string& id : ids) {
              const WireResponse response = client.recv_matching(id);
              ASSERT_TRUE(response.ok()) << response.reason;
              got[c].push_back(response.response_json);
            }
          });
        }
        for (auto& sender : senders) sender.join();
        for (std::size_t c = 0; c < connections; ++c) {
          std::size_t k = 0;
          for (std::size_t q = c; q < kQueries; q += connections, ++k) {
            EXPECT_EQ(got[c][k], reference[q % unique.size()])
                << "workers=" << workers << " shards=" << shards
                << " connections=" << connections << " query=" << q
                << " wire=" << (c % 2 == 1 ? "binary" : "text");
          }
        }
      }
      server.shutdown();
      // Every decomposition leaves the corpus equivalent: migrating back
      // to one file must reproduce the single-file layout losslessly.
    }
  }
  serve::EvaluationStore final_store(store_path);
  EXPECT_GT(final_store.size(), 0u);
  std::remove(store_path.c_str());
}

TEST(DesignServer, SameFingerprintQueriesKeepArrivalOrderAcrossWorkers) {
  // Two same-fingerprint queries pipelined back-to-back: the first (big
  // budget) evaluates the space cold; the second (small budget, same
  // evaluator scope) must run AFTER it and replay from the store. If
  // multi-worker dispatch ever reordered them, the second would run cold
  // (store_hits 0) — fingerprint routing makes the order a guarantee, not
  // a race.
  const std::string store_path = temp_store_path("net_order.store");
  serve::ServiceConfig service_config;
  service_config.store_path = store_path;
  auto service = std::make_shared<serve::DesignService>(service_config);
  ServerConfig config = loopback_config();
  config.search_workers = 8;
  DesignServer server(service, config);
  server.start();

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  serve::DesignQuery big = tiny_query(6.0);
  big.budget.initial_points_per_dim = 3;
  big.budget.max_evaluations = 64;
  serve::DesignQuery small = tiny_query(6.0);  // same fingerprint
  small.budget.initial_points_per_dim = 2;
  small.budget.max_evaluations = 8;
  client.send_query("big", big);
  client.send_query("small", small);

  const WireResponse first = client.recv_matching("big");
  const WireResponse second = client.recv_matching("small");
  ASSERT_TRUE(first.ok()) << first.reason;
  ASSERT_TRUE(second.ok()) << second.reason;
  // The second query replayed at least part of the first one's work.
  EXPECT_EQ(second.response_json.find("\"store_hits\":0,"),
            std::string::npos)
      << second.response_json;
  server.shutdown();
  std::remove(store_path.c_str());
}

TEST(DesignServer, FastLaneAnswersCheapQueriesDuringASlowSearch) {
  auto service = std::make_shared<serve::DesignService>();
  ServerConfig config = loopback_config();
  config.search_workers = 1;  // one busy search worker: the worst case
  DesignServer server(service, config);
  server.start();

  DesignClient busy;
  busy.connect("127.0.0.1", server.port());
  busy.send_query("slow", slow_query());
  ASSERT_TRUE(wait_until([&] { return server.stats().in_flight >= 1; }));

  // With the search worker pinned, stats (inline on the I/O thread) and
  // archive_only probes (fast lane) must still answer promptly — their
  // latency stays flat instead of queueing behind the search.
  DesignClient probe;
  probe.connect("127.0.0.1", server.port());
  double worst_ms = 0.0;
  for (int i = 0; i < 5; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const WireResponse stats = probe.stats();
    ASSERT_TRUE(stats.ok()) << stats.reason;
    serve::DesignQuery archive_probe = tiny_query();
    archive_probe.archive_only = true;
    const WireResponse archive = probe.query(archive_probe);
    ASSERT_TRUE(archive.ok()) << archive.reason;
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    worst_ms = std::max(worst_ms, ms);
  }
  // The slow search is still running: the cheap round trips above did not
  // wait for it.
  EXPECT_GE(server.stats().in_flight, 1u);
  EXPECT_LT(worst_ms, 5000.0);
  const WireResponse stats = probe.stats();
  EXPECT_NE(stats.stats_json.find("\"fast_lane_queries\":5"),
            std::string::npos)
      << stats.stats_json;
  EXPECT_NE(stats.stats_json.find("\"workers\":1"), std::string::npos);
  EXPECT_NE(stats.stats_json.find("\"worker_depths\":["), std::string::npos);

  EXPECT_TRUE(busy.recv_matching("slow").ok());
  server.shutdown();
}

TEST(DesignClientRetry, BackoffScheduleIsDeterministicCappedAndDepthScaled) {
  RetryPolicy policy;
  policy.base_ms = 10.0;
  policy.cap_ms = 500.0;
  policy.depth_weight = 0.1;
  policy.jitter_key = 42;

  // Pure function: the same (attempt, depth, counter) replays exactly.
  EXPECT_EQ(retry_backoff_ms(policy, 0, 0, 0),
            retry_backoff_ms(policy, 0, 0, 0));
  // Half-jitter bounds: exp/2 <= backoff < exp.
  for (std::size_t attempt = 0; attempt < 12; ++attempt) {
    const double exp_ms =
        std::min(policy.cap_ms, policy.base_ms * std::pow(2.0, attempt));
    const double ms = retry_backoff_ms(policy, attempt, 0, attempt);
    EXPECT_GE(ms, exp_ms / 2.0) << attempt;
    EXPECT_LT(ms, exp_ms) << attempt;
  }
  // The queue-depth hint scales the wait: a deeply backed-up server earns
  // a longer backoff at the same attempt/counter.
  EXPECT_GT(retry_backoff_ms(policy, 0, 100, 7),
            retry_backoff_ms(policy, 0, 0, 7));
  // The cap is a real cap even with a huge depth hint.
  EXPECT_LT(retry_backoff_ms(policy, 20, 100000, 3), policy.cap_ms);
  // Distinct jitter keys desynchronize two otherwise-identical clients.
  RetryPolicy other = policy;
  other.jitter_key = 43;
  EXPECT_NE(retry_backoff_ms(policy, 2, 0, 5),
            retry_backoff_ms(other, 2, 0, 5));
}

TEST(DesignClientRetry, RetriesOverloadedRejectionsUntilAdmitted) {
  ServerConfig config = loopback_config();
  config.max_pending_queries = 1;
  config.search_workers = 1;
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, config);
  server.start();

  DesignClient busy;
  busy.connect("127.0.0.1", server.port());
  busy.send_query("slow", slow_query());
  ASSERT_TRUE(wait_until([&] { return server.stats().in_flight >= 1; }));
  busy.send_query("fill", tiny_query(2.0));  // occupies the 1-slot queue
  ASSERT_TRUE(wait_until([&] { return server.stats().queue_depth >= 1; }));

  // The retrying client is rejected at first (queue full behind the slow
  // search) and then admitted once the backlog drains — the caller sees
  // one ok response, never a rejection.
  DesignClient patient;
  patient.connect("127.0.0.1", server.port());
  RetryPolicy policy;
  policy.max_retries = 400;
  policy.base_ms = 5.0;
  policy.cap_ms = 50.0;
  policy.jitter_key = 7;
  patient.set_retry_policy(policy);
  const WireResponse response = patient.query(tiny_query(3.0));
  ASSERT_TRUE(response.ok()) << response.status << ": " << response.reason;
  const ClientStats& stats = patient.client_stats();
  EXPECT_GE(stats.overloaded_rejections, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_GT(stats.backoff_ms_total, 0.0);
  EXPECT_EQ(stats.queries_sent, stats.retries + 1);

  EXPECT_TRUE(busy.recv_matching("slow").ok());
  EXPECT_TRUE(busy.recv_matching("fill").ok());
  server.shutdown();
}

TEST(ServerConfigEnv, ParsesWorkerCount) {
  ::setenv("METACORE_SERVER_WORKERS", "4", 1);
  EXPECT_EQ(ServerConfig::from_env().search_workers, 4u);
  ::setenv("METACORE_SERVER_WORKERS", "0", 1);
  EXPECT_THROW(ServerConfig::from_env(), std::invalid_argument);
  ::setenv("METACORE_SERVER_WORKERS", "xyz", 1);
  EXPECT_THROW(ServerConfig::from_env(), std::invalid_argument);
  ::setenv("METACORE_SERVER_WORKERS", "999", 1);
  EXPECT_THROW(ServerConfig::from_env(), std::invalid_argument);
  ::unsetenv("METACORE_SERVER_WORKERS");
  EXPECT_EQ(ServerConfig::from_env().search_workers, 0u);  // auto
}

TEST(DesignServer, OverloadReturnsStructuredRejections) {
  ServerConfig config = loopback_config();
  config.max_pending_queries = 1;  // tiny admission quota
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, config);
  server.start();

  DesignClient busy;
  busy.connect("127.0.0.1", server.port());
  busy.send_query("slow", slow_query());
  // Wait until the dispatcher is actually inside submit_batch, so the
  // queue stays occupied by whatever we send next.
  ASSERT_TRUE(wait_until([&] { return server.stats().in_flight >= 1; }));

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  client.send_query("fill", tiny_query(2.0));  // occupies the 1-slot queue
  for (int i = 0; i < 6; ++i) {
    client.send_query("burst" + std::to_string(i), tiny_query(3.0));
  }

  std::size_t rejected = 0;
  std::size_t ok = 0;
  for (int i = 0; i < 7; ++i) {
    const WireResponse response = client.recv_response();
    if (response.rejected()) {
      EXPECT_EQ(response.reason, "overloaded");
      ++rejected;
    } else {
      ASSERT_TRUE(response.ok()) << response.reason;
      ++ok;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(rejected + ok, 7u);
  // The slow query itself completes normally.
  EXPECT_TRUE(busy.recv_matching("slow").ok());
  EXPECT_GE(server.stats().queries_rejected, rejected);
  server.shutdown();
}

TEST(DesignServer, GracefulDrainFinishesInFlightAndFlushesTheStore) {
  const std::string store_path = temp_store_path("net_drain.store");
  serve::ServiceConfig service_config;
  service_config.store_path = store_path;
  auto service = std::make_shared<serve::DesignService>(service_config);
  DesignServer server(service, loopback_config());
  server.start();

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  std::vector<std::string> ids;
  for (const double mbps : {1.0, 2.0, 3.0, 4.0}) {
    const std::string id = "d" + std::to_string(static_cast<int>(mbps));
    client.send_query(id, tiny_query(mbps));
    ids.push_back(id);
  }
  // Wait until all four frames cleared admission (queries_received counts
  // decoded query frames, and nothing rejects before the drain begins) —
  // otherwise shutdown() could race the client's sends and legitimately
  // answer a late frame with a `draining` rejection.
  ASSERT_TRUE(wait_until([&] {
    const ServerStats stats = server.stats();
    return stats.queries_received >= ids.size();
  }));
  ASSERT_EQ(server.stats().queries_rejected, 0u);

  // Drain while the batch is mid-flight: every admitted query must still
  // be answered before the server closes the connection. The join guard
  // keeps an unexpected client-side throw from terminating the process
  // with the drainer still joinable.
  struct JoinGuard {
    std::thread thread;
    ~JoinGuard() {
      if (thread.joinable()) thread.join();
    }
  } drainer{std::thread([&] { server.shutdown(); })};
  for (const std::string& id : ids) {
    const WireResponse response = client.recv_matching(id);
    EXPECT_TRUE(response.ok()) << response.reason;
  }
  EXPECT_THROW(client.recv_response(), std::runtime_error);  // clean EOF
  drainer.thread.join();
  EXPECT_FALSE(server.running());

  // New connections are refused after drain.
  DesignClient late;
  EXPECT_THROW(late.connect("127.0.0.1", server.port(), 2000),
               std::runtime_error);

  // The journaled evaluations survived the drain: a fresh store replays
  // them.
  serve::EvaluationStore reopened(store_path);
  EXPECT_GT(reopened.size(), 0u);
  std::remove(store_path.c_str());
}

TEST(DesignServer, ClientVanishingMidQueryDoesNotKillTheServer) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();

  {
    DesignClient doomed;
    doomed.connect("127.0.0.1", server.port());
    doomed.send_query("gone", slow_query());
    ASSERT_TRUE(wait_until([&] { return server.stats().in_flight >= 1; }));
    doomed.close();  // vanish while the query is executing
  }

  // The query still completes (and would have fed the store); only the
  // delivery is counted as dropped — and the server keeps serving.
  ASSERT_TRUE(
      wait_until([&] { return server.stats().dropped_responses >= 1; }));
  DesignClient client;
  client.connect("127.0.0.1", server.port());
  const WireResponse response = client.query(tiny_query());
  EXPECT_TRUE(response.ok()) << response.reason;
  server.shutdown();
  EXPECT_GE(server.stats().dropped_responses, 1u);
}

}  // namespace
}  // namespace metacore::net
