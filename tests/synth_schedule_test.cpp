// Tests for DFG scheduling and allocation minimization.
#include <gtest/gtest.h>

#include "synth/schedule.hpp"

namespace metacore::synth {
namespace {

using dsp::StructureKind;

TEST(AsapSchedule, RespectsLatencies) {
  const Dfg dfg = build_filter_dfg(StructureKind::DirectForm2, 4);
  const auto asap = asap_schedule(dfg);
  for (std::size_t i = 0; i < dfg.nodes.size(); ++i) {
    for (int in : dfg.nodes[i].inputs) {
      const auto j = static_cast<std::size_t>(in);
      int latency = 0;
      if (dfg.nodes[j].op == DfgOp::Mul) latency = kMulLatency;
      if (dfg.nodes[j].op == DfgOp::Add || dfg.nodes[j].op == DfgOp::Sub) {
        latency = kAddLatency;
      }
      EXPECT_GE(asap[i], asap[j] + latency);
    }
  }
}

TEST(AlapSchedule, NeverBeforeAsap) {
  const Dfg dfg = build_filter_dfg(StructureKind::Cascade, 6);
  const int cp = dfg.critical_path(kMulLatency, kAddLatency);
  const auto asap = asap_schedule(dfg);
  const auto alap = alap_schedule(dfg, cp);
  for (std::size_t i = 0; i < dfg.nodes.size(); ++i) {
    EXPECT_GE(alap[i], asap[i]) << i;
  }
}

TEST(AlapSchedule, RejectsImpossibleDeadline) {
  const Dfg dfg = build_filter_dfg(StructureKind::Cascade, 6);
  EXPECT_THROW(alap_schedule(dfg, 1), std::invalid_argument);
}

TEST(ListSchedule, MeetsLowerBounds) {
  const Dfg dfg = build_filter_dfg(StructureKind::DirectForm2, 8);
  const Allocation alloc{2, 2};
  const DfgSchedule sched = list_schedule(dfg, alloc);
  EXPECT_GE(sched.cycles, dfg.critical_path(kMulLatency, kAddLatency));
  // Resource bound: 17 muls over 2 multipliers needs >= 9 issue slots.
  EXPECT_GE(sched.cycles, (dfg.count(DfgOp::Mul) + 1) / 2);
}

TEST(ListSchedule, ResourceLimitHolds) {
  const Dfg dfg = build_filter_dfg(StructureKind::Parallel, 8);
  const Allocation alloc{1, 1};
  const DfgSchedule sched = list_schedule(dfg, alloc);
  std::map<int, int> muls_at, alus_at;
  for (std::size_t i = 0; i < dfg.nodes.size(); ++i) {
    const DfgOp op = dfg.nodes[i].op;
    if (op == DfgOp::Mul) ++muls_at[sched.start_cycle[i]];
    if (op == DfgOp::Add || op == DfgOp::Sub) ++alus_at[sched.start_cycle[i]];
  }
  for (const auto& [cycle, count] : muls_at) EXPECT_LE(count, 1);
  for (const auto& [cycle, count] : alus_at) EXPECT_LE(count, 1);
}

TEST(ListSchedule, MoreResourcesNeverSlower) {
  for (const auto kind : dsp::all_structures()) {
    const Dfg dfg = build_filter_dfg(kind, 8);
    const int narrow = list_schedule(dfg, {1, 1}).cycles;
    const int wide = list_schedule(dfg, {4, 4}).cycles;
    EXPECT_LE(wide, narrow) << to_string(kind);
  }
}

TEST(MinimizeAllocation, FindsSmallestFeasible) {
  const Dfg dfg = build_filter_dfg(StructureKind::DirectForm2, 8);
  const int relaxed = list_schedule(dfg, {1, 1}).cycles;
  const auto result = minimize_allocation(dfg, relaxed);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.allocation.multipliers, 1);
  EXPECT_EQ(result.allocation.alus, 1);

  // Tightening the budget (but not below the critical path) requires more
  // hardware.
  const int cp = dfg.critical_path(kMulLatency, kAddLatency);
  const auto tight =
      minimize_allocation(dfg, std::max((relaxed + 1) / 2, cp + 2));
  ASSERT_TRUE(tight.feasible);
  EXPECT_GT(tight.allocation.multipliers + tight.allocation.alus, 2);
}

TEST(MinimizeAllocation, InfeasibleBelowCriticalPath) {
  const Dfg dfg = build_filter_dfg(StructureKind::LatticeLadder, 8);
  const auto result = minimize_allocation(dfg, 2);
  EXPECT_FALSE(result.feasible);
}

TEST(MinimizeAllocation, RejectsEmptyBudget) {
  const Dfg dfg = build_filter_dfg(StructureKind::Cascade, 4);
  EXPECT_THROW(minimize_allocation(dfg, 0), std::invalid_argument);
}

TEST(PipelinedAllocation, InfeasibleBelowRecurrence) {
  const Dfg dfg = build_filter_dfg(StructureKind::LatticeLadder, 8);
  const int mii = dfg.recurrence_mii(kMulLatency, kAddLatency);
  EXPECT_FALSE(pipelined_allocation(dfg, mii - 1).feasible);
  EXPECT_TRUE(pipelined_allocation(dfg, mii).feasible);
}

TEST(PipelinedAllocation, AllocationIsSteadyStateCeiling) {
  const Dfg dfg = build_filter_dfg(StructureKind::Parallel, 8);
  const int muls = dfg.count(DfgOp::Mul);  // 17
  const auto result = pipelined_allocation(dfg, 6);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.allocation.multipliers, (muls + 5) / 6);
  EXPECT_LE(result.initiation_interval, 6);
  EXPECT_GE(result.initiation_interval,
            dfg.recurrence_mii(kMulLatency, kAddLatency));
}

TEST(PipelinedAllocation, RelaxedBudgetUsesOneOfEach) {
  const Dfg dfg = build_filter_dfg(StructureKind::Cascade, 8);
  const auto result = pipelined_allocation(dfg, 500);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.allocation.multipliers, 1);
  EXPECT_EQ(result.allocation.alus, 1);
  EXPECT_EQ(result.overlap, 1);
}

TEST(PipelinedAllocation, OverlapGrowsAtTightRates) {
  const Dfg dfg = build_filter_dfg(StructureKind::Cascade, 8);
  const int mii = dfg.recurrence_mii(kMulLatency, kAddLatency);
  const auto result = pipelined_allocation(dfg, mii);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.overlap, 1);  // several samples in flight
}

TEST(ScheduleGantt, ListsFuOperationsPerCycle) {
  const Dfg dfg = build_filter_dfg(StructureKind::Cascade, 2);
  const DfgSchedule sched = list_schedule(dfg, {1, 1});
  const std::string gantt = schedule_gantt(dfg, sched);
  EXPECT_NE(gantt.find("cycle | issued operations"), std::string::npos);
  EXPECT_NE(gantt.find("mul#"), std::string::npos);
  // One row per issue cycle, none beyond the makespan.
  EXPECT_EQ(gantt.find("   -1 |"), std::string::npos);
  DfgSchedule empty;
  EXPECT_THROW(schedule_gantt(dfg, empty), std::invalid_argument);
}

TEST(Allocation, Validation) {
  EXPECT_THROW((Allocation{0, 1}).validate(), std::invalid_argument);
  EXPECT_THROW((Allocation{1, 0}).validate(), std::invalid_argument);
  EXPECT_THROW((Allocation{65, 1}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((Allocation{4, 4}).validate());
}

}  // namespace
}  // namespace metacore::synth
