// Unit tests for the convolutional encoder and polynomial tables.
#include <gtest/gtest.h>

#include "comm/convolutional.hpp"

namespace metacore::comm {
namespace {

// Hand-worked example for the classic K=3, G=(7,5) encoder of Figure 2.
// Registers start at 0. Generator 7 = 111 (input + both registers),
// generator 5 = 101 (input + oldest register).
TEST(ConvolutionalEncoder, HandWorkedK3Sequence) {
  ConvolutionalEncoder enc(best_rate_half_code(3));
  // Input 1: reg = [1, 0, 0] -> g7: 1^0^0 = 1, g5: 1^0 = 1.
  // Input 0: reg = [0, 1, 0] -> g7: 0^1^0 = 1, g5: 0^0 = 0.
  // Input 1: reg = [1, 0, 1] -> g7: 1^0^1 = 0, g5: 1^1 = 0.
  // Input 1: reg = [1, 1, 0] -> g7: 1^1^0 = 0, g5: 1^0 = 1.
  const std::vector<int> bits{1, 0, 1, 1};
  const std::vector<int> expected{1, 1, 1, 0, 0, 0, 0, 1};
  EXPECT_EQ(enc.encode(bits), expected);
}

TEST(ConvolutionalEncoder, AllZeroInputYieldsAllZeroOutput) {
  for (int k = 3; k <= 9; ++k) {
    ConvolutionalEncoder enc(best_rate_half_code(k));
    const std::vector<int> zeros(64, 0);
    for (int s : enc.encode(zeros)) {
      ASSERT_EQ(s, 0) << "K=" << k;
    }
  }
}

TEST(ConvolutionalEncoder, StateTracksLastKMinusOneBits) {
  ConvolutionalEncoder enc(best_rate_half_code(3));
  enc.encode_bit(1);
  EXPECT_EQ(enc.state(), 0b10u);  // newest bit in MSB of the 2-bit state
  enc.encode_bit(0);
  EXPECT_EQ(enc.state(), 0b01u);
  enc.encode_bit(0);
  EXPECT_EQ(enc.state(), 0b00u);
  enc.reset();
  EXPECT_EQ(enc.state(), 0u);
}

TEST(ConvolutionalEncoder, LinearityOverGf2) {
  // Convolutional codes are linear: enc(a xor b) = enc(a) xor enc(b)
  // (with matching initial state 0).
  const CodeSpec code = best_rate_half_code(5);
  std::vector<int> a{1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  std::vector<int> b{0, 1, 1, 0, 1, 0, 0, 1, 1, 0};
  std::vector<int> x(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) x[i] = a[i] ^ b[i];
  ConvolutionalEncoder ea(code), eb(code), ex(code);
  const auto sa = ea.encode(a);
  const auto sb = eb.encode(b);
  const auto sx = ex.encode(x);
  for (std::size_t i = 0; i < sx.size(); ++i) {
    EXPECT_EQ(sx[i], sa[i] ^ sb[i]) << i;
  }
}

TEST(CodeSpec, PaperTable3Generators) {
  EXPECT_EQ(best_rate_half_code(3).generators_octal(), "7,5");
  EXPECT_EQ(best_rate_half_code(5).generators_octal(), "35,23");
  EXPECT_EQ(best_rate_half_code(7).generators_octal(), "171,133");
}

TEST(CodeSpec, NumStates) {
  EXPECT_EQ(best_rate_half_code(3).num_states(), 4);
  EXPECT_EQ(best_rate_half_code(7).num_states(), 64);
  EXPECT_EQ(best_rate_half_code(9).num_states(), 256);
}

TEST(CodeSpec, ValidateRejectsBadSpecs) {
  EXPECT_THROW((CodeSpec{1, {1}}).validate(), std::invalid_argument);
  EXPECT_THROW((CodeSpec{3, {}}).validate(), std::invalid_argument);
  EXPECT_THROW((CodeSpec{3, {0}}).validate(), std::invalid_argument);
  EXPECT_THROW((CodeSpec{3, {017}}).validate(), std::invalid_argument);
  // No generator taps the input bit (bit K-1).
  EXPECT_THROW((CodeSpec{3, {03, 01}}).validate(), std::invalid_argument);
}

TEST(CodeSpec, BestCodesTabulatedRange) {
  for (int k = 3; k <= 9; ++k) {
    EXPECT_NO_THROW(best_rate_half_code(k).validate());
  }
  EXPECT_THROW(best_rate_half_code(2), std::invalid_argument);
  EXPECT_THROW(best_rate_half_code(10), std::invalid_argument);
}

TEST(CodeSpec, CandidateCodesAreDistinctAndValid) {
  for (int k = 3; k <= 9; ++k) {
    const auto candidates = candidate_rate_half_codes(k);
    ASSERT_GE(candidates.size(), 2u) << k;
    EXPECT_NE(candidates[0], candidates[1]);
    for (const auto& c : candidates) {
      EXPECT_NO_THROW(c.validate());
      EXPECT_EQ(c.constraint_length, k);
    }
  }
}

TEST(ConvolutionalEncoder, RateOneThirdCode) {
  // A rate 1/3 spec exercises the n > 2 path.
  const CodeSpec code{3, {07, 05, 06}};
  ConvolutionalEncoder enc(code);
  const auto out = enc.encode(std::vector<int>{1, 0});
  ASSERT_EQ(out.size(), 6u);
  // First bit: reg = 100 -> g7=1, g5=1, g6(110)=1.
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 1);
}

}  // namespace
}  // namespace metacore::comm
