// Tests for the baseline search strategies and Pareto utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "search/baselines.hpp"
#include "search/pareto.hpp"

namespace metacore::search {
namespace {

DesignSpace grid(int dims, int points) {
  std::vector<ParameterDef> params;
  for (int d = 0; d < dims; ++d) {
    ParameterDef p;
    p.name = "x" + std::to_string(d);
    for (int i = 0; i < points; ++i) {
      p.values.push_back(static_cast<double>(i) / (points - 1));
    }
    params.push_back(p);
  }
  return DesignSpace(params);
}

Objective minimize_cost() {
  Objective obj;
  obj.minimize = "cost";
  return obj;
}

EvaluateFn bowl(std::vector<double> opt) {
  return [opt](const std::vector<double>& p, int) {
    double v = 0.0;
    for (std::size_t d = 0; d < p.size(); ++d) {
      v += (p[d] - opt[d]) * (p[d] - opt[d]);
    }
    Evaluation e;
    e.metrics["cost"] = v;
    return e;
  };
}

TEST(RandomSearch, RespectsBudgetAndFindsSomething) {
  const auto space = grid(2, 17);
  const auto result =
      random_search(space, minimize_cost(), bowl({0.5, 0.5}), 60);
  EXPECT_LE(result.evaluations, 60u);
  EXPECT_TRUE(result.found_feasible);
  EXPECT_LT(result.best.eval.metric("cost"), 0.5);
}

TEST(RandomSearch, DeterministicPerSeed) {
  const auto space = grid(2, 9);
  const auto a = random_search(space, minimize_cost(), bowl({0.25, 0.75}), 30,
                               0, /*seed=*/5);
  const auto b = random_search(space, minimize_cost(), bowl({0.25, 0.75}), 30,
                               0, /*seed=*/5);
  EXPECT_EQ(a.best.indices, b.best.indices);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(RandomSearch, DoesNotRevisitPoints) {
  const auto space = grid(1, 5);  // only 5 points
  const auto result =
      random_search(space, minimize_cost(), bowl({0.5}), 100);
  EXPECT_LE(result.evaluations, 5u);
}

TEST(RandomSearch, RejectsNullEvaluator) {
  const auto space = grid(1, 5);
  EXPECT_THROW(random_search(space, minimize_cost(), nullptr, 10),
               std::invalid_argument);
}

TEST(GridSearch, CoversTheSparseGrid) {
  const auto space = grid(2, 9);
  const auto result =
      grid_search(space, minimize_cost(), bowl({0.5, 0.5}), 3, 100);
  EXPECT_EQ(result.evaluations, 9u);  // 3 x 3
  EXPECT_EQ(result.levels_executed, 1);
}

TEST(ParetoFront, ExtractsNonDominatedStaircase) {
  std::vector<EvaluatedPoint> history;
  auto add = [&](double x, double y, bool feasible = true) {
    EvaluatedPoint p;
    p.eval.feasible = feasible;
    p.eval.metrics["x"] = x;
    p.eval.metrics["y"] = y;
    history.push_back(p);
  };
  add(1.0, 5.0);
  add(2.0, 3.0);
  add(3.0, 4.0);   // dominated by (2, 3)
  add(4.0, 1.0);
  add(0.5, 9.0);
  add(1.5, 2.0, /*feasible=*/false);  // skipped
  const auto front = pareto_front(history, "x", "y");
  ASSERT_EQ(front.size(), 4u);
  EXPECT_DOUBLE_EQ(front[0].eval.metric("x"), 0.5);
  EXPECT_DOUBLE_EQ(front[1].eval.metric("x"), 1.0);
  EXPECT_DOUBLE_EQ(front[2].eval.metric("x"), 2.0);
  EXPECT_DOUBLE_EQ(front[3].eval.metric("x"), 4.0);
}

TEST(ParetoFront, EmptyOnNoFeasiblePoints) {
  std::vector<EvaluatedPoint> history(3);
  for (auto& p : history) p.eval.feasible = false;
  EXPECT_TRUE(pareto_front(history, "x", "y").empty());
}

TEST(ParetoFront, DeduplicatesMetricTiesKeepingLowestIndices) {
  // Three points with identical (x, y): exactly one survives, and it is
  // the lexicographically smallest grid index regardless of history order.
  std::vector<EvaluatedPoint> history;
  auto add = [&](std::vector<int> indices) {
    EvaluatedPoint p;
    p.indices = std::move(indices);
    p.eval.metrics["x"] = 2.0;
    p.eval.metrics["y"] = 3.0;
    history.push_back(p);
  };
  add({4, 1});
  add({0, 7});
  add({0, 2});
  const auto front = pareto_front(history, "x", "y");
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].indices, (std::vector<int>{0, 2}));

  // Same set in a different order picks the same survivor.
  std::reverse(history.begin(), history.end());
  const auto reversed = pareto_front(history, "x", "y");
  ASSERT_EQ(reversed.size(), 1u);
  EXPECT_EQ(reversed[0].indices, (std::vector<int>{0, 2}));
}

TEST(ParetoFront, EqualYTieKeepsOnlyTheLowerX) {
  std::vector<EvaluatedPoint> history(2);
  history[0].eval.metrics["x"] = 1.0;
  history[0].eval.metrics["y"] = 2.0;
  history[1].eval.metrics["x"] = 3.0;
  history[1].eval.metrics["y"] = 2.0;  // weakly dominated
  const auto front = pareto_front(history, "x", "y");
  ASSERT_EQ(front.size(), 1u);
  EXPECT_DOUBLE_EQ(front[0].eval.metric("x"), 1.0);
}

TEST(Hypervolume, SinglePointRectangle) {
  std::vector<EvaluatedPoint> history(1);
  history[0].eval.metrics["x"] = 1.0;
  history[0].eval.metrics["y"] = 2.0;
  EXPECT_NEAR(hypervolume_2d(history, "x", "y", 3.0, 4.0), 2.0 * 2.0, 1e-12);
}

TEST(Hypervolume, StaircaseAddsDisjointStrips) {
  std::vector<EvaluatedPoint> history(2);
  history[0].eval.metrics["x"] = 1.0;
  history[0].eval.metrics["y"] = 3.0;
  history[1].eval.metrics["x"] = 2.0;
  history[1].eval.metrics["y"] = 1.0;
  // Ref (4, 4): strip1 = (2-1)*(4-3) = 1; strip2 = (4-2)*(4-1) = 6.
  EXPECT_NEAR(hypervolume_2d(history, "x", "y", 4.0, 4.0), 7.0, 1e-12);
}

TEST(Hypervolume, PointsBeyondReferenceIgnored) {
  std::vector<EvaluatedPoint> history(1);
  history[0].eval.metrics["x"] = 5.0;
  history[0].eval.metrics["y"] = 5.0;
  EXPECT_DOUBLE_EQ(hypervolume_2d(history, "x", "y", 4.0, 4.0), 0.0);
}

TEST(Hypervolume, EmptyFrontHasZeroVolume) {
  EXPECT_DOUBLE_EQ(hypervolume_2d({}, "x", "y", 4.0, 4.0), 0.0);
}

TEST(Hypervolume, AllPointsBeyondReference) {
  // Degenerate front: every point outside the reference box, in both
  // coordinates separately (x beyond, y beyond, both beyond).
  std::vector<EvaluatedPoint> history(3);
  history[0].eval.metrics["x"] = 9.0;
  history[0].eval.metrics["y"] = 1.0;
  history[1].eval.metrics["x"] = 1.0;
  history[1].eval.metrics["y"] = 9.0;
  history[2].eval.metrics["x"] = 9.0;
  history[2].eval.metrics["y"] = 9.0;
  EXPECT_DOUBLE_EQ(hypervolume_2d(history, "x", "y", 4.0, 4.0), 0.0);
}

TEST(Hypervolume, SinglePointOnReferenceBoundaryIsZero) {
  std::vector<EvaluatedPoint> history(1);
  history[0].eval.metrics["x"] = 4.0;  // exactly on the reference
  history[0].eval.metrics["y"] = 1.0;
  EXPECT_DOUBLE_EQ(hypervolume_2d(history, "x", "y", 4.0, 4.0), 0.0);
}

TEST(AnnealingSearch, ConvergesOnBowl) {
  const auto space = grid(2, 33);
  AnnealingConfig config;
  config.budget = 400;
  config.cooling = 0.99;
  const auto result =
      annealing_search(space, minimize_cost(), bowl({0.40625, 0.59375}), config);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_LT(result.best.eval.metric("cost"), 0.02);
  EXPECT_LE(result.evaluations, 400u);
}

TEST(AnnealingSearch, HandlesConstraints) {
  const auto space = grid(2, 17);
  Objective obj;
  obj.minimize = "x";
  obj.constraints.push_back({Constraint::Kind::LowerBound, "y", 0.5});
  auto eval = [](const std::vector<double>& p, int) {
    Evaluation e;
    e.metrics["x"] = p[0];
    e.metrics["y"] = p[1];
    return e;
  };
  AnnealingConfig config;
  config.budget = 600;
  config.cooling = 0.995;
  const auto result = annealing_search(space, obj, eval, config);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_LE(result.best.eval.metric("x"), 0.2);
  EXPECT_GE(result.best.eval.metric("y"), 0.5);
}

TEST(AnnealingSearch, Rejections) {
  const auto space = grid(1, 5);
  EXPECT_THROW(annealing_search(space, minimize_cost(), nullptr),
               std::invalid_argument);
  AnnealingConfig bad;
  bad.cooling = 1.5;
  EXPECT_THROW(annealing_search(space, minimize_cost(), bowl({0.5}), bad),
               std::invalid_argument);
}

TEST(Baselines, MultiresBeatsRandomAtEqualBudget) {
  // On a smooth bowl the structured search should land (much) closer to
  // the optimum than uniform random sampling with the same budget.
  const auto space = grid(3, 33);
  const std::vector<double> opt{0.40625, 0.59375, 0.5};
  SearchConfig config;
  config.max_resolution = 4;
  config.regions_per_level = 2;
  MultiresolutionSearch engine(space, minimize_cost(), bowl(opt), config);
  const auto structured = engine.run();
  const auto random = random_search(space, minimize_cost(), bowl(opt),
                                    structured.evaluations);
  ASSERT_TRUE(structured.found_feasible && random.found_feasible);
  EXPECT_LT(structured.best.eval.metric("cost"),
            random.best.eval.metric("cost"));
}

}  // namespace
}  // namespace metacore::search
