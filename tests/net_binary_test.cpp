// The MCB1 binary wire mode, bottom to top: bincode primitive round trips,
// lossless query/response codec round trips pinned against the canonical
// JSON writers, binary envelope round trips, the BinaryFrameDecoder state
// machine (split feeds, keep-alive padding, an exhaustive flip-every-byte
// corruption fuzz with resynchronization), the hello negotiation/downgrade
// matrix against a live server, a live-connection corruption fuzz (one
// error per damaged frame, connection survives), byte-identity of a binary
// answer against an in-process submit, and the explicit ClientStats
// lifetime (reset on reconnect).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "serve/binary_codec.hpp"
#include "serve/service.hpp"

namespace metacore::net {
namespace {

using namespace std::chrono_literals;
namespace bc = serve::bincode;

/// Cheap Viterbi query (loose BER target, tiny budget) — seconds of CPU at
/// most, milliseconds when replayed from a warm archive.
serve::DesignQuery tiny_query(double mbps = 1.0) {
  serve::DesignQuery query;
  query.kind = serve::QueryKind::Viterbi;
  query.target_ber = 1e-2;
  query.esn0_db = 1.0;
  query.throughput_mbps = mbps;
  query.ber_shards = 2;
  query.budget.initial_points_per_dim = 2;
  query.budget.max_resolution = 0;
  query.budget.regions_per_level = 1;
  query.budget.max_evaluations = 16;
  return query;
}

ServerConfig loopback_config() {
  ServerConfig config;
  config.bind_address = "127.0.0.1";
  config.port = 0;  // ephemeral
  return config;
}

// --- bincode primitives --------------------------------------------------

TEST(Bincode, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  (1ull << 32) - 1,
                                  1ull << 32,
                                  (1ull << 63),
                                  std::numeric_limits<std::uint64_t>::max()};
  std::string out;
  for (const std::uint64_t v : values) bc::put_varint(out, v);
  bc::Reader reader{out, "test"};
  for (const std::uint64_t v : values) EXPECT_EQ(reader.varint(), v);
  EXPECT_TRUE(reader.done());
}

TEST(Bincode, ZigzagRoundTripsSignedExtremes) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -2,
                                 63,
                                 -64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  std::string out;
  for (const std::int64_t v : values) bc::put_zigzag(out, v);
  bc::Reader reader{out, "test"};
  for (const std::int64_t v : values) EXPECT_EQ(reader.zigzag(), v);
  EXPECT_TRUE(reader.done());
}

TEST(Bincode, F64IsBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           0.1,
                           1e-300,
                           -1e308,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  std::string out;
  for (const double v : values) bc::put_f64(out, v);
  // Packed: a count byte plus only the non-zero tail of the bit image —
  // never more than 9 bytes, and the common quantized values stay tiny.
  ASSERT_LE(out.size(), 9 * std::size(values));
  bc::Reader reader{out, "test"};
  for (const double v : values) {
    const double got = reader.f64();
    std::uint64_t want_bits = 0, got_bits = 0;
    std::memcpy(&want_bits, &v, 8);
    std::memcpy(&got_bits, &got, 8);
    EXPECT_EQ(got_bits, want_bits);  // bit-exact, signed zero and NaN included
  }
  EXPECT_TRUE(reader.done());

  std::string small;
  bc::put_f64(small, 0.0);   // all-zero image: just the count byte
  bc::put_f64(small, 0.5);   // zero mantissa tail: count + 2 bytes
  EXPECT_EQ(small.size(), 1u + 3u);

  std::string bad;
  bc::put_u8(bad, 9);  // a count byte can never exceed 8
  bc::Reader bad_reader{bad, "test"};
  EXPECT_THROW(bad_reader.f64(), std::runtime_error);
}

TEST(Bincode, StringsRoundTripAndTruncationThrows) {
  std::string out;
  bc::put_string(out, "");
  bc::put_string(out, std::string("nul\0byte", 8));
  bc::Reader reader{out, "test"};
  EXPECT_EQ(reader.string(), "");
  EXPECT_EQ(reader.string(), std::string("nul\0byte", 8));
  EXPECT_TRUE(reader.done());

  // A length prefix pointing past the buffer must throw, not over-read.
  std::string bad;
  bc::put_varint(bad, 100);
  bad += "short";
  bc::Reader broken{bad, "test"};
  EXPECT_THROW(broken.string(), std::runtime_error);

  bc::Reader empty{std::string_view{}, "test"};
  EXPECT_THROW(empty.u8(), std::runtime_error);
  EXPECT_THROW(empty.varint(), std::runtime_error);
  EXPECT_THROW(empty.f64(), std::runtime_error);
}

// --- query/response document codecs --------------------------------------

std::vector<serve::DesignQuery> every_query_kind() {
  std::vector<serve::DesignQuery> queries;
  queries.push_back(tiny_query());  // plain Viterbi

  serve::DesignQuery rich = tiny_query(3.5);  // every optional field set
  rich.ber_lanes = 4;
  rich.minimize = "energy_nj";
  search::Constraint upper;
  upper.kind = search::Constraint::Kind::UpperBound;
  upper.metric = "area_mm2";
  upper.bound = 12.5;
  search::Constraint lower;
  lower.kind = search::Constraint::Kind::LowerBound;
  lower.metric = "throughput_mbps";
  lower.bound = 0.25;
  rich.constraints = {upper, lower};
  queries.push_back(rich);

  serve::DesignQuery iir;  // IIR scope
  iir.kind = serve::QueryKind::Iir;
  iir.sample_period_us = 2.0;
  iir.budget.max_evaluations = 32;
  queries.push_back(iir);

  serve::DesignQuery archive = tiny_query();  // archive probe
  archive.archive_only = true;
  queries.push_back(archive);
  return queries;
}

TEST(BinaryCodec, QueryRoundTripsEveryKindLosslessly) {
  for (const serve::DesignQuery& query : every_query_kind()) {
    const std::string bytes = serve::encode_binary(query);
    const serve::DesignQuery decoded = serve::decode_design_query(bytes);
    // decode(encode(x)) == x, pinned through the canonical JSON writer.
    EXPECT_EQ(serve::to_json(decoded), serve::to_json(query));
    // The encoding is canonical: re-encoding the decoded struct reproduces
    // the bytes exactly.
    EXPECT_EQ(serve::encode_binary(decoded), bytes);
  }
}

TEST(BinaryCodec, QueryDecodeRejectsBadVersionAndTrailingBytes) {
  std::string bytes = serve::encode_binary(tiny_query());
  std::string wrong_version = bytes;
  wrong_version[0] = static_cast<char>(serve::kBinaryCodecVersion + 1);
  EXPECT_THROW(serve::decode_design_query(wrong_version), std::runtime_error);
  EXPECT_THROW(serve::decode_design_query(bytes + "x"), std::runtime_error);
  EXPECT_THROW(serve::decode_design_query(bytes.substr(0, bytes.size() - 1)),
               std::runtime_error);
  EXPECT_THROW(serve::decode_design_query(std::string_view{}),
               std::runtime_error);
}

TEST(BinaryCodec, ResponseRoundTripsARealSearchAnswer) {
  // A genuine search response (front points, metrics, summary text) and a
  // genuine archive answer both survive encode/decode byte-exactly.
  serve::DesignService service;
  const serve::DesignQuery query = tiny_query();
  const serve::DesignResponse searched = service.submit(query);
  serve::DesignQuery probe = query;
  probe.archive_only = true;
  const serve::DesignResponse archived = service.submit(probe);

  for (const serve::DesignResponse* response : {&searched, &archived}) {
    const std::string bytes = serve::encode_binary(*response);
    const serve::DesignResponse decoded = serve::decode_design_response(bytes);
    EXPECT_EQ(serve::to_json(decoded), serve::to_json(*response));
    EXPECT_EQ(serve::encode_binary(decoded), bytes);
  }

  // The binary form is what the wire-byte win is made of: strictly smaller
  // than the canonical JSON for a real answer.
  EXPECT_LT(serve::encode_binary(searched).size(),
            serve::to_json(searched).size());
}

// --- binary envelopes -----------------------------------------------------

TEST(BinaryEnvelope, RequestRoundTripsQueryAndStats) {
  Request query_request;
  query_request.id = "req-1";
  query_request.kind = RequestKind::Query;
  query_request.query = every_query_kind()[1];
  const Request decoded_query =
      decode_binary_request(encode_binary_request(query_request));
  EXPECT_EQ(decoded_query.id, "req-1");
  EXPECT_EQ(decoded_query.kind, RequestKind::Query);
  EXPECT_EQ(serve::to_json(decoded_query.query),
            serve::to_json(query_request.query));

  Request stats_request;
  stats_request.id = "req-2";
  stats_request.kind = RequestKind::Stats;
  const Request decoded_stats =
      decode_binary_request(encode_binary_request(stats_request));
  EXPECT_EQ(decoded_stats.id, "req-2");
  EXPECT_EQ(decoded_stats.kind, RequestKind::Stats);

  // Hello is text-only by design: it happens before the mode switch.
  Request hello;
  hello.id = "req-3";
  hello.kind = RequestKind::Hello;
  hello.wire = "binary";
  EXPECT_THROW(encode_binary_request(hello), std::logic_error);
}

TEST(BinaryEnvelope, RequestDecodeValidatesIdAndKind) {
  Request request;
  request.id = "ok";
  request.kind = RequestKind::Stats;
  std::string bytes = encode_binary_request(request);

  std::string wrong_version = bytes;
  wrong_version[0] = 99;
  EXPECT_THROW(decode_binary_request(wrong_version), std::runtime_error);
  std::string wrong_kind = bytes;
  wrong_kind[1] = 7;
  EXPECT_THROW(decode_binary_request(wrong_kind), std::runtime_error);
  // Stats carries no body; trailing bytes are malformed.
  EXPECT_THROW(decode_binary_request(bytes + "x"), std::runtime_error);

  Request empty_id;
  empty_id.kind = RequestKind::Stats;
  EXPECT_THROW(decode_binary_request(encode_binary_request(empty_id)),
               std::runtime_error);
  Request long_id;
  long_id.id = std::string(kMaxRequestIdBytes + 1, 'x');
  long_id.kind = RequestKind::Stats;
  EXPECT_THROW(decode_binary_request(encode_binary_request(long_id)),
               std::runtime_error);

  // Best-effort id recovery reads through the prefix even when the body is
  // broken, and returns "" when the prefix itself is unusable.
  Request broken_query;
  broken_query.id = "recover-me";
  broken_query.kind = RequestKind::Query;
  std::string broken = encode_binary_request(broken_query);
  broken.resize(broken.size() - 3);  // truncate inside the query document
  EXPECT_THROW(decode_binary_request(broken), std::runtime_error);
  EXPECT_EQ(best_effort_binary_request_id(broken), "recover-me");
  EXPECT_EQ(best_effort_binary_request_id("\x01"), "");
  EXPECT_EQ(best_effort_binary_request_id(""), "");
}

TEST(BinaryEnvelope, ResponseEnvelopesRoundTripEveryStatus) {
  serve::DesignService service;
  const serve::DesignResponse answer = service.submit(tiny_query());
  const std::string body = serve::encode_binary(answer);

  const WireResponse ok =
      parse_binary_wire_response(make_binary_design_response("a", body));
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.id, "a");
  // The decoded body re-serializes to exactly the text-mode answer — the
  // lossless pin the byte-identity tests stand on.
  EXPECT_EQ(ok.response_json, serve::to_json(answer));

  const WireResponse stats = parse_binary_wire_response(
      make_binary_stats_response("b", "{\"queries\":3}"));
  EXPECT_TRUE(stats.ok());
  EXPECT_EQ(stats.id, "b");
  EXPECT_EQ(stats.stats_json, "{\"queries\":3}");

  const WireResponse rejected = parse_binary_wire_response(
      make_binary_rejected_response("c", "overloaded", 17));
  EXPECT_TRUE(rejected.rejected());
  EXPECT_EQ(rejected.id, "c");
  EXPECT_EQ(rejected.reason, "overloaded");
  EXPECT_EQ(rejected.queue_depth, 17u);

  const WireResponse error =
      parse_binary_wire_response(make_binary_error_response("", "boom"));
  EXPECT_EQ(error.status, "error");
  EXPECT_EQ(error.id, "");
  EXPECT_EQ(error.reason, "boom");

  EXPECT_THROW(parse_binary_wire_response("not an envelope"),
               std::runtime_error);
}

TEST(BinaryEnvelope, ResponseBodyIsAContiguousSpliceableSuffix) {
  // The server splices pre-encoded (cached) response bytes straight into
  // the envelope; that only works if the body is the exact byte suffix.
  serve::DesignService service;
  const std::string body = serve::encode_binary(service.submit(tiny_query()));
  const std::string envelope = make_binary_design_response("id", body);
  ASSERT_GE(envelope.size(), body.size());
  EXPECT_EQ(envelope.substr(envelope.size() - body.size()), body);
}

// --- BinaryFrameDecoder ---------------------------------------------------

std::string framed(std::string_view payload) {
  std::string out;
  append_binary_frame(out, payload);
  return out;
}

TEST(BinaryFrameDecoder, DecodesFramesFedOneByteAtATime) {
  BinaryFrameDecoder decoder(kDefaultMaxFrameBytes, /*expect_preamble=*/false);
  const std::string stream = framed("first payload") + framed("") +
                             framed(std::string("\n#|binary\0ok", 12));
  std::vector<std::string> payloads;
  for (const char byte : stream) {
    decoder.feed(&byte, 1);
    while (auto frame = decoder.next()) {
      ASSERT_FALSE(frame->corrupt) << frame->reason;
      payloads.push_back(frame->payload);
    }
  }
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "first payload");
  EXPECT_EQ(payloads[1], "");
  // Payload bytes are arbitrary: newlines, '#', '|', NUL all round-trip.
  EXPECT_EQ(payloads[2], std::string("\n#|binary\0ok", 12));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(BinaryFrameDecoder, SkipsKeepAliveNewlinesBetweenFrames) {
  BinaryFrameDecoder decoder(kDefaultMaxFrameBytes, /*expect_preamble=*/false);
  decoder.feed("\n\n" + framed("a") + "\n\n\n" + framed("b") + "\n");
  auto a = decoder.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(a->corrupt);
  EXPECT_EQ(a->payload, "a");
  auto b = decoder.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->payload, "b");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(BinaryFrameDecoder, PreambleIsRequiredOnceWhenExpected) {
  BinaryFrameDecoder decoder(kDefaultMaxFrameBytes, /*expect_preamble=*/true);
  decoder.feed(std::string(kBinaryPreamble) + framed("hello"));
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(frame->corrupt);
  EXPECT_EQ(frame->payload, "hello");

  BinaryFrameDecoder wrong(kDefaultMaxFrameBytes, /*expect_preamble=*/true);
  wrong.feed("MCBX" + framed("hello"));
  auto bad = wrong.next();
  ASSERT_TRUE(bad.has_value());
  EXPECT_TRUE(bad->corrupt);
  EXPECT_NE(bad->reason.find("preamble"), std::string::npos);
}

TEST(BinaryFrameDecoder, OversizedLengthIsCorruptNotAnUnboundedBuffer) {
  BinaryFrameDecoder decoder(64, /*expect_preamble=*/false);
  decoder.feed(framed(std::string(65, 'x')));
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->corrupt);
  EXPECT_NE(frame->reason.find("exceeds"), std::string::npos);
}

TEST(BinaryFrameDecoder, EveryByteFlipYieldsOneCorruptEventAndResyncs) {
  // Exhaustive single-byte corruption: flip each byte of frame A in turn,
  // follow with keep-alive padding (longer than the frame limit, so a
  // corrupted length field can never stall the decoder) and an intact
  // frame B. Invariant, for every flip position: exactly one corrupt
  // event, and B is always recovered.
  //
  // The payloads avoid '\n' so a shrunken length field cannot fake a valid
  // terminator inside A — the guarantee the deterministic server-side fuzz
  // below relies on as well.
  const std::string payload_a(40, 'a');
  const std::string payload_b = "survivor-frame-payload";
  const std::string frame_a = framed(payload_a);
  const std::string tail = std::string(300, '\n') + framed(payload_b);
  const std::size_t kMaxFrame = 256;

  for (std::size_t flip = 0; flip < frame_a.size(); ++flip) {
    std::string corrupted = frame_a;
    corrupted[flip] = static_cast<char>(corrupted[flip] ^ 0x01);
    BinaryFrameDecoder decoder(kMaxFrame, /*expect_preamble=*/false);
    decoder.feed(corrupted + tail);

    std::size_t corrupt_events = 0;
    std::vector<std::string> recovered;
    while (auto frame = decoder.next()) {
      if (frame->corrupt) {
        ++corrupt_events;
        EXPECT_FALSE(frame->reason.empty());
      } else {
        recovered.push_back(frame->payload);
      }
    }
    EXPECT_EQ(corrupt_events, 1u) << "flip at byte " << flip;
    ASSERT_EQ(recovered.size(), 1u) << "flip at byte " << flip;
    EXPECT_EQ(recovered[0], payload_b) << "flip at byte " << flip;
  }
}

// --- live server: negotiation, downgrade, corruption, identity ------------

TEST(BinaryWire, NegotiationDowngradeMatrix) {
  for (const bool server_binary : {true, false}) {
    auto service = std::make_shared<serve::DesignService>();
    ServerConfig config = loopback_config();
    config.enable_binary = server_binary;
    DesignServer server(service, config);
    server.start();

    DesignClient client;
    client.connect("127.0.0.1", server.port());
    // A declined hello is a downgrade, not a failure: the connection
    // simply stays in text mode and keeps working.
    EXPECT_EQ(client.negotiate_binary(), server_binary);
    EXPECT_EQ(client.wire() == serve::WireEncoding::Binary, server_binary);
    // Negotiating again is idempotent in both directions.
    EXPECT_EQ(client.negotiate_binary(), server_binary);

    const WireResponse answer = client.query(tiny_query());
    ASSERT_TRUE(answer.ok()) << answer.reason;
    EXPECT_FALSE(answer.response_json.empty());
    const WireResponse stats = client.stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_FALSE(stats.stats_json.empty());

    const ServerStats server_stats = server.stats();
    EXPECT_EQ(server_stats.hello_requests, server_binary ? 1u : 2u);
    EXPECT_EQ(server_stats.binary_connections, server_binary ? 1u : 0u);
    server.shutdown();
  }
}

TEST(BinaryWire, HelloAfterAQueryIsAnErrorAndTheConnectionSurvives) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.stats().ok());  // any request pins the text mode

  Request hello;
  hello.id = "late";
  hello.kind = RequestKind::Hello;
  hello.wire = "binary";
  client.send_raw(to_json(hello));
  const WireResponse err = client.recv_matching("late");
  EXPECT_EQ(err.status, "error");
  EXPECT_NE(err.reason.find("hello"), std::string::npos);

  // The connection stayed text and stayed alive.
  const WireResponse answer = client.query(tiny_query());
  EXPECT_TRUE(answer.ok()) << answer.reason;
  server.shutdown();
}

TEST(BinaryWire, BinaryAnswerIsByteIdenticalToInProcess) {
  const serve::DesignQuery query = tiny_query();

  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.negotiate_binary());
  const WireResponse wire = client.query(query);
  ASSERT_TRUE(wire.ok()) << wire.reason;
  const WireResponse stats = client.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats.stats_json.empty());
  server.shutdown();

  // A fresh in-process service (same no-store starting state) must produce
  // exactly the bytes the binary envelope decoded back into.
  serve::DesignService reference;
  EXPECT_EQ(wire.response_json, serve::to_json(reference.submit(query)));
}

TEST(BinaryWire, MalformedBinaryEnvelopeGetsAnErrorWithTheRecoveredId) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();
  DesignClient client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.negotiate_binary());
  // One normal request first: the client sends its "MCB1" preamble lazily
  // with the first binary frame, and send_bytes below bypasses that.
  ASSERT_TRUE(client.stats().ok());

  // A well-framed envelope whose query document is truncated: the frame
  // CRC passes, decode fails, and the error still carries the id.
  Request request;
  request.id = "bad-doc";
  request.kind = RequestKind::Query;
  request.query = tiny_query();
  std::string envelope = encode_binary_request(request);
  envelope.resize(envelope.size() - 2);
  std::string bytes;
  append_binary_frame(bytes, envelope);
  client.send_bytes(bytes);
  const WireResponse err = client.recv_matching("bad-doc");
  EXPECT_EQ(err.status, "error");
  EXPECT_FALSE(err.reason.empty());

  // Garbage that is not even an envelope: id unrecoverable, still answered.
  std::string garbage;
  append_binary_frame(garbage, "complete nonsense");
  client.send_bytes(garbage);
  const WireResponse anon = client.recv_response();
  EXPECT_EQ(anon.status, "error");
  EXPECT_EQ(anon.id, "");

  const WireResponse answer = client.query(tiny_query());
  EXPECT_TRUE(answer.ok()) << answer.reason;
  server.shutdown();
}

TEST(BinaryWireFuzz, EveryByteFlipGetsOneErrorAndTheConnectionSurvives) {
  // Live-connection variant of the decoder fuzz: flip every byte of a
  // well-formed binary stats request in turn on ONE connection. Each flip
  // must produce exactly one error envelope, and a follow-up request must
  // still be answered — the server never wedges, never disconnects, never
  // double-reports.
  auto service = std::make_shared<serve::DesignService>();
  ServerConfig config = loopback_config();
  config.max_frame_bytes = 512;  // bounds how far a corrupted length reads
  DesignServer server(service, config);
  server.start();

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.negotiate_binary());
  // Establish the client-side "MCB1" preamble (sent lazily with the first
  // binary frame) before shipping raw corrupted bytes past the framer.
  ASSERT_TRUE(client.stats().ok());

  Request probe;
  probe.id = "fz";
  probe.kind = RequestKind::Stats;
  std::string frame;
  append_binary_frame(frame, encode_binary_request(probe));
  // Longer than max_frame_bytes + framing, so a corrupted length field can
  // never leave the server waiting for bytes that will not come.
  const std::string padding(600, '\n');

  for (std::size_t flip = 0; flip < frame.size(); ++flip) {
    std::string corrupted = frame;
    corrupted[flip] = static_cast<char>(corrupted[flip] ^ 0x01);
    client.send_bytes(corrupted + padding);

    const WireResponse err = client.recv_response();
    EXPECT_EQ(err.status, "error") << "flip at byte " << flip;
    EXPECT_FALSE(err.reason.empty()) << "flip at byte " << flip;

    const std::string id = client.next_id();
    client.send_stats(id);
    const WireResponse ok = client.recv_matching(id);
    EXPECT_TRUE(ok.ok()) << "flip at byte " << flip << ": " << ok.reason;
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.malformed_frames, frame.size());
  EXPECT_EQ(stats.accepted_connections, 1u);  // one connection throughout
  server.shutdown();
}

// --- ClientStats lifetime -------------------------------------------------

TEST(DesignClient, StatsAreResetByReconnectAndOnDemand) {
  auto service = std::make_shared<serve::DesignService>();
  DesignServer server(service, loopback_config());
  server.start();

  DesignClient client;
  client.connect("127.0.0.1", server.port());
  serve::DesignQuery probe = tiny_query();
  probe.archive_only = true;  // instant: no search behind the counter
  ASSERT_TRUE(client.query(probe).ok());
  EXPECT_EQ(client.client_stats().queries_sent, 1u);
  EXPECT_GT(client.client_stats().wire_bytes_sent, 0u);
  EXPECT_GT(client.client_stats().wire_bytes_received, 0u);

  // Reconnecting opens a fresh accounting window: nothing bleeds across,
  // retry/backoff counters included.
  client.connect("127.0.0.1", server.port());
  EXPECT_EQ(client.client_stats().queries_sent, 0u);
  EXPECT_EQ(client.client_stats().wire_bytes_sent, 0u);
  EXPECT_EQ(client.client_stats().wire_bytes_received, 0u);
  EXPECT_EQ(client.client_stats().retries, 0u);
  EXPECT_EQ(client.client_stats().overloaded_rejections, 0u);
  EXPECT_EQ(client.client_stats().gave_up, 0u);
  EXPECT_EQ(client.client_stats().backoff_ms_total, 0.0);
  // ... and the wire mode is back to text until negotiated again.
  EXPECT_EQ(client.wire(), serve::WireEncoding::Json);

  ASSERT_TRUE(client.query(probe).ok());
  EXPECT_EQ(client.client_stats().queries_sent, 1u);
  client.reset_stats();
  EXPECT_EQ(client.client_stats().queries_sent, 0u);
  EXPECT_EQ(client.client_stats().wire_bytes_sent, 0u);
  server.shutdown();
}

}  // namespace
}  // namespace metacore::net
