// Tests for the kernel profiler (software-pipelined loop model, spills).
#include <gtest/gtest.h>

#include "vliw/simulator.hpp"

namespace metacore::vliw {
namespace {

MachineConfig machine(int alus, int mem, int regs) {
  MachineConfig m;
  m.num_alus = alus;
  m.num_multipliers = 1;
  m.num_memory_ports = mem;
  m.num_branch_units = 1;
  m.register_file_size = regs;
  m.datapath_bits = 32;
  return m;
}

Kernel loop_kernel(double trips, int alu_ops, int recurrence = 1) {
  Kernel kernel;
  BlockBuilder b("loop", trips);
  const int x = b.live_in();
  for (int i = 0; i < alu_ops; ++i) b.emit(OpCode::Add, {x});
  kernel.blocks.push_back(std::move(b).build());
  kernel.blocks.back().recurrence_mii = recurrence;
  return kernel;
}

TEST(ProfileKernel, SteadyStateUsesInitiationInterval) {
  // 8 independent adds per iteration, 100 iterations: on a 2-ALU machine the
  // II is 4, so total ~= makespan + 99*4.
  const Kernel kernel = loop_kernel(100.0, 8);
  const ExecutionProfile p = profile_kernel(kernel, machine(2, 1, 32));
  ASSERT_EQ(p.blocks.size(), 1u);
  EXPECT_EQ(p.blocks[0].initiation_interval, 4);
  EXPECT_NEAR(p.cycles_per_unit, p.blocks[0].makespan + 99.0 * 4.0, 1e-9);
}

TEST(ProfileKernel, WiderMachineShrinksLoopCycles) {
  const Kernel kernel = loop_kernel(64.0, 8);
  const double narrow = profile_kernel(kernel, machine(1, 1, 32)).cycles_per_unit;
  const double wide = profile_kernel(kernel, machine(8, 2, 32)).cycles_per_unit;
  EXPECT_LT(wide, narrow / 3.0);
}

TEST(ProfileKernel, RecurrenceBoundsInitiationInterval) {
  const Kernel serial = loop_kernel(50.0, 2, /*recurrence=*/5);
  const ExecutionProfile p = profile_kernel(serial, machine(8, 2, 32));
  EXPECT_EQ(p.blocks[0].initiation_interval, 5);
  EXPECT_GE(p.cycles_per_unit, 49.0 * 5.0);
}

TEST(ProfileKernel, SingleTripBlockPaysMakespanOnly) {
  const Kernel kernel = loop_kernel(1.0, 4);
  const ExecutionProfile p = profile_kernel(kernel, machine(1, 1, 32));
  EXPECT_EQ(p.blocks[0].total_cycles, p.blocks[0].makespan);
}

TEST(ProfileKernel, FractionalTripCountsScale) {
  Kernel kernel = loop_kernel(0.5, 4);
  const ExecutionProfile p = profile_kernel(kernel, machine(1, 1, 32));
  EXPECT_NEAR(p.blocks[0].total_cycles, 0.5 * p.blocks[0].makespan, 1e-9);
}

TEST(ProfileKernel, SpillsAppearWhenRegisterFileTooSmall) {
  // Many simultaneously-live values on a tiny register file must spill.
  Kernel kernel;
  BlockBuilder b("fat", 1.0);
  const int x = b.live_in();
  std::vector<int> vs;
  for (int i = 0; i < 24; ++i) vs.push_back(b.emit(OpCode::Add, {x}));
  int acc = vs[0];
  for (std::size_t i = 1; i < vs.size(); ++i) {
    acc = b.emit(OpCode::Add, {acc, vs[i]});
  }
  b.emit_void(OpCode::Store, {x, acc});
  kernel.blocks.push_back(std::move(b).build());

  const ExecutionProfile small = profile_kernel(kernel, machine(8, 1, 8));
  const ExecutionProfile big = profile_kernel(kernel, machine(8, 1, 64));
  EXPECT_GT(small.spill_ops_per_unit, 0.0);
  EXPECT_DOUBLE_EQ(big.spill_ops_per_unit, 0.0);
  EXPECT_GT(small.cycles_per_unit, big.cycles_per_unit);
}

TEST(ProfileKernel, OpCountsAggregateAcrossBlocks) {
  Kernel kernel;
  {
    BlockBuilder b("a", 2.0);
    const int x = b.live_in();
    b.emit(OpCode::Load, {x});
    b.emit(OpCode::Add, {x});
    kernel.blocks.push_back(std::move(b).build());
  }
  {
    BlockBuilder b("b", 3.0);
    const int x = b.live_in();
    b.emit(OpCode::Mul, {x, x});
    b.emit_void(OpCode::Branch, {});
    kernel.blocks.push_back(std::move(b).build());
  }
  const ExecutionProfile p = profile_kernel(kernel, machine(2, 1, 32));
  EXPECT_DOUBLE_EQ(p.mem_ops_per_unit, 2.0);
  EXPECT_DOUBLE_EQ(p.alu_ops_per_unit, 2.0);
  EXPECT_DOUBLE_EQ(p.mul_ops_per_unit, 3.0);
  EXPECT_DOUBLE_EQ(p.branch_ops_per_unit, 3.0);
  EXPECT_DOUBLE_EQ(p.ops_per_unit, 4.0 + 6.0);
  EXPECT_GT(p.ipc(), 0.0);
}

}  // namespace
}  // namespace metacore::vliw
