// Tests for filter dataflow graphs: structure, counts, critical paths, and
// recurrence bounds.
#include <gtest/gtest.h>

#include "synth/dfg.hpp"
#include "synth/schedule.hpp"

namespace metacore::synth {
namespace {

using dsp::StructureKind;

TEST(Dfg, AllStructuresValidate) {
  for (const auto kind : dsp::all_structures()) {
    for (int order : {1, 2, 3, 4, 8, 9}) {
      EXPECT_NO_THROW(build_filter_dfg(kind, order).validate())
          << to_string(kind) << " order " << order;
    }
  }
}

TEST(Dfg, MultiplierCountsMatchStructureTheory) {
  const int n = 8;
  // DF2: 2n+1 multipliers; cascade of n/2 biquads: 5 per section; parallel:
  // 4 per section + 1 direct; ladder: 2n lattice + (n+1) taps.
  EXPECT_EQ(build_filter_dfg(StructureKind::DirectForm2, n).count(DfgOp::Mul),
            2 * n + 1);
  EXPECT_EQ(build_filter_dfg(StructureKind::DirectForm1, n).count(DfgOp::Mul),
            2 * n + 1);
  EXPECT_EQ(build_filter_dfg(StructureKind::Cascade, n).count(DfgOp::Mul),
            5 * (n / 2));
  EXPECT_EQ(build_filter_dfg(StructureKind::Parallel, n).count(DfgOp::Mul),
            4 * (n / 2) + 1);
  EXPECT_EQ(
      build_filter_dfg(StructureKind::LatticeLadder, n).count(DfgOp::Mul),
      2 * n + n + 1);
}

TEST(Dfg, StateRegisterCounts) {
  const int n = 8;
  EXPECT_EQ(build_filter_dfg(StructureKind::DirectForm1, n).state_registers(),
            2 * n);
  for (const auto kind :
       {StructureKind::DirectForm2, StructureKind::DirectForm2Transposed,
        StructureKind::Cascade, StructureKind::Parallel,
        StructureKind::LatticeLadder}) {
    EXPECT_EQ(build_filter_dfg(kind, n).state_registers(), n)
        << to_string(kind);
  }
}

TEST(Dfg, OddOrderSections) {
  // Order 5: cascade has 2 biquads + 1 first-order section.
  const Dfg dfg = build_filter_dfg(StructureKind::Cascade, 5);
  EXPECT_EQ(dfg.state_registers(), 5);
  EXPECT_EQ(dfg.count(DfgOp::Mul), 5 + 5 + 3);
}

TEST(Dfg, SingleInputSingleOutput) {
  for (const auto kind : dsp::all_structures()) {
    const Dfg dfg = build_filter_dfg(kind, 6);
    EXPECT_EQ(dfg.count(DfgOp::Input), 1) << to_string(kind);
    EXPECT_EQ(dfg.count(DfgOp::Output), 1) << to_string(kind);
  }
}

TEST(Dfg, CriticalPathOrdering) {
  // Serial-chain structures (cascade sections in series, the ladder's
  // f-chain) have long critical paths; the parallel form (independent
  // sections + adder tree) is the shortest of the recursive structures.
  const int n = 8;
  const int ladder = build_filter_dfg(StructureKind::LatticeLadder, n)
                         .critical_path(kMulLatency, kAddLatency);
  const int parallel = build_filter_dfg(StructureKind::Parallel, n)
                           .critical_path(kMulLatency, kAddLatency);
  const int cascade = build_filter_dfg(StructureKind::Cascade, n)
                          .critical_path(kMulLatency, kAddLatency);
  EXPECT_GT(ladder, parallel);
  EXPECT_GT(cascade, parallel);
}

TEST(Dfg, RecurrenceMiiOrdering) {
  // Recurrence bound: the ladder's g-feedback loop threads two multiplies
  // (one in the f-chain, one in the g-update), making it the slowest; the
  // biquad loops of cascade/parallel carry one multiply plus adds.
  const int n = 8;
  const int ladder = build_filter_dfg(StructureKind::LatticeLadder, n)
                         .recurrence_mii(kMulLatency, kAddLatency);
  const int cascade = build_filter_dfg(StructureKind::Cascade, n)
                          .recurrence_mii(kMulLatency, kAddLatency);
  const int parallel = build_filter_dfg(StructureKind::Parallel, n)
                           .recurrence_mii(kMulLatency, kAddLatency);
  EXPECT_GT(ladder, cascade);
  EXPECT_LE(parallel, cascade + 1);
  EXPECT_GE(parallel, 3);  // mul + add + sub around the biquad loop
}

TEST(Dfg, LadderRecurrenceIsStageLocal) {
  // Gray-Markel feedback goes through one-sample-old g values of the
  // *adjacent* stage, so the recurrence bound does not grow with order —
  // only the iteration latency does.
  const int at2 = build_filter_dfg(StructureKind::LatticeLadder, 2)
                      .recurrence_mii(kMulLatency, kAddLatency);
  const int at10 = build_filter_dfg(StructureKind::LatticeLadder, 10)
                       .recurrence_mii(kMulLatency, kAddLatency);
  EXPECT_EQ(at2, at10);
  const int lat2 = build_filter_dfg(StructureKind::LatticeLadder, 2)
                       .critical_path(kMulLatency, kAddLatency);
  const int lat10 = build_filter_dfg(StructureKind::LatticeLadder, 10)
                        .critical_path(kMulLatency, kAddLatency);
  EXPECT_GT(lat10, lat2);
}

TEST(Dfg, RecurrenceMiiConstantForCascade) {
  const int at4 = build_filter_dfg(StructureKind::Cascade, 4)
                      .recurrence_mii(kMulLatency, kAddLatency);
  const int at12 = build_filter_dfg(StructureKind::Cascade, 12)
                       .recurrence_mii(kMulLatency, kAddLatency);
  EXPECT_EQ(at4, at12);  // sections pipeline independently
}

TEST(Dfg, ValidationCatchesForwardReferences) {
  Dfg dfg;
  dfg.nodes.push_back({DfgOp::Add, {1, 2}, "", -1});  // refers ahead
  EXPECT_THROW(dfg.validate(), std::invalid_argument);
}

TEST(Dfg, ValidationCatchesArityViolations) {
  Dfg dfg;
  dfg.nodes.push_back({DfgOp::Input, {}, "", -1});
  dfg.nodes.push_back({DfgOp::Add, {0}, "", -1});  // unary add
  EXPECT_THROW(dfg.validate(), std::invalid_argument);
  dfg.nodes[1] = {DfgOp::StateRead, {}, "", -1};  // missing register id
  EXPECT_THROW(dfg.validate(), std::invalid_argument);
}

TEST(Dfg, RejectsOutOfRangeOrder) {
  EXPECT_THROW(build_filter_dfg(StructureKind::Cascade, 0),
               std::invalid_argument);
  EXPECT_THROW(build_filter_dfg(StructureKind::Cascade, 65),
               std::invalid_argument);
}

TEST(Dfg, RealizationOverloadMatchesKind) {
  const auto spec_tf = dsp::TransferFunction{{0.2, 0.2}, {1.0, -0.6}};
  const auto realization = dsp::realize(spec_tf, StructureKind::DirectForm2);
  const Dfg dfg = build_filter_dfg(*realization, 1);
  EXPECT_EQ(dfg.name, "df2");
}

}  // namespace
}  // namespace metacore::synth
