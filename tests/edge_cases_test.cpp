// Consolidated edge-case and statistical-property tests that cut across
// modules: RNG corner inputs, interval coverage, format boundaries, and
// small-domain behaviours that the mainline suites do not reach.
#include <gtest/gtest.h>

#include "comm/ber.hpp"
#include "comm/puncture.hpp"
#include "util/fixed.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace metacore {
namespace {

TEST(EdgeCases, UniformIndexSingletonDomain) {
  util::Random rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_index(1), 0u);
  }
}

TEST(EdgeCases, WilsonIntervalCoversTrueRate) {
  // Statistical property: across many Bernoulli experiments, the 95% Wilson
  // interval must contain the true p in roughly 95% of cases.
  constexpr double kTrueP = 0.03;
  constexpr int kExperiments = 400;
  constexpr int kTrials = 500;
  util::Random rng(42);
  int covered = 0;
  for (int e = 0; e < kExperiments; ++e) {
    util::ProportionEstimate est;
    for (int t = 0; t < kTrials; ++t) est.add(rng.bernoulli(kTrueP));
    const auto iv = est.wilson();
    covered += (iv.low <= kTrueP && kTrueP <= iv.high) ? 1 : 0;
  }
  const double coverage = static_cast<double>(covered) / kExperiments;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

TEST(EdgeCases, BerPointZeroTrials) {
  comm::BerPoint point;
  EXPECT_DOUBLE_EQ(point.ber(), 0.0);
}

TEST(EdgeCases, QFormatWidestWord) {
  const util::QFormat q{62, 30};
  EXPECT_NO_THROW(q.validate());
  const util::Fixed big(1e8, q);
  EXPECT_FALSE(big.saturated());
  EXPECT_NEAR(big.to_double(), 1e8, 1.0);
}

TEST(EdgeCases, FixedZeroTimesAnything) {
  const util::QFormat q{16, 12};
  const util::Fixed zero(0.0, q);
  const util::Fixed x(1.5, q);
  EXPECT_DOUBLE_EQ(zero.mul(x).to_double(), 0.0);
  EXPECT_DOUBLE_EQ(x.mul(zero).to_double(), 0.0);
}

TEST(EdgeCases, PunctureLabelIsRate) {
  EXPECT_EQ(comm::rate_2_3_pattern().label(), "rate 2/3");
  EXPECT_EQ(comm::rate_5_6_pattern().label(), "rate 5/6");
}

TEST(EdgeCases, PunctureEmptyStream) {
  const std::vector<int> empty;
  EXPECT_TRUE(comm::puncture(std::span<const int>(empty),
                             comm::rate_2_3_pattern())
                  .empty());
  const std::vector<double> no_rx;
  EXPECT_TRUE(comm::depuncture(no_rx, comm::rate_2_3_pattern(), 0).empty());
}

TEST(EdgeCases, RunningStatsExtremeMagnitudes) {
  util::RunningStats s;
  s.add(1e18);
  s.add(-1e18);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 1e18);
  EXPECT_DOUBLE_EQ(s.min(), -1e18);
}

TEST(EdgeCases, XoshiroNeverReturnsSameValueForever) {
  // Degenerate-seed guard: even seed 0 must produce a varied stream.
  util::Xoshiro256 gen(0);
  const auto first = gen();
  bool varied = false;
  for (int i = 0; i < 16; ++i) {
    if (gen() != first) {
      varied = true;
      break;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(EdgeCases, DecoderSpecLabelIncludesQuantizationMethod) {
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(5);
  spec.kind = comm::DecoderKind::Soft;
  spec.quantization = comm::QuantizationMethod::FixedSoft;
  EXPECT_NE(spec.label().find("Q=F"), std::string::npos);
  spec.quantization = comm::QuantizationMethod::AdaptiveSoft;
  EXPECT_NE(spec.label().find("Q=A"), std::string::npos);
  spec.kind = comm::DecoderKind::Hard;
  EXPECT_EQ(spec.label().find("Q="), std::string::npos);
}

}  // namespace
}  // namespace metacore
