// Tests for the design-query service: JSON round-trip, in-flight and batch
// coalescing, Pareto-archive answers, warm-store equivalence, and
// byte-identical responses at any thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "serve/service.hpp"

namespace metacore::serve {
namespace {

std::string temp_store_path(const char* name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// A deliberately small Viterbi query: loose BER target (cheap simulation),
/// tiny search budget — seconds, not minutes.
DesignQuery small_viterbi_query() {
  DesignQuery query;
  query.kind = QueryKind::Viterbi;
  query.target_ber = 1e-2;
  query.esn0_db = 1.0;
  query.throughput_mbps = 1.0;
  query.ber_shards = 2;
  query.budget.initial_points_per_dim = 2;
  query.budget.max_resolution = 0;
  query.budget.regions_per_level = 1;
  query.budget.max_evaluations = 24;
  return query;
}

DesignQuery small_iir_query() {
  DesignQuery query;
  query.kind = QueryKind::Iir;
  query.sample_period_us = 1.0;
  query.budget.initial_points_per_dim = 2;
  query.budget.max_resolution = 0;
  query.budget.regions_per_level = 1;
  query.budget.max_evaluations = 12;
  return query;
}

TEST(DesignQueryJson, RoundTripsCanonically) {
  DesignQuery query = small_viterbi_query();
  query.minimize = "cycles_per_bit";
  query.constraints.push_back(
      {search::Constraint::Kind::UpperBound, "ber", 3.0517578125e-03});
  query.constraints.push_back(
      {search::Constraint::Kind::LowerBound, "cores", 2.0});
  query.archive_only = true;
  const std::string json = to_json(query);
  const DesignQuery parsed = parse_design_query(json);
  // Canonical encoding: equal queries encode to equal bytes.
  EXPECT_EQ(to_json(parsed), json);
  EXPECT_EQ(parsed.kind, QueryKind::Viterbi);
  EXPECT_EQ(parsed.target_ber, query.target_ber);
  EXPECT_EQ(parsed.budget.max_evaluations, query.budget.max_evaluations);
  ASSERT_EQ(parsed.constraints.size(), 2u);
  EXPECT_EQ(parsed.constraints[1].kind, search::Constraint::Kind::LowerBound);
  EXPECT_TRUE(parsed.archive_only);

  const DesignQuery iir = parse_design_query(to_json(small_iir_query()));
  EXPECT_EQ(iir.kind, QueryKind::Iir);
  EXPECT_EQ(to_json(iir), to_json(small_iir_query()));
}

TEST(DesignQueryJson, DefaultsApplyToSparseDocuments) {
  const DesignQuery query = parse_design_query("{\"kind\":\"iir\"}");
  EXPECT_EQ(query.kind, QueryKind::Iir);
  EXPECT_EQ(query.sample_period_us, 1.0);
  EXPECT_TRUE(query.constraints.empty());
  EXPECT_FALSE(query.archive_only);
}

TEST(DesignQueryJson, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_design_query("not json"), std::runtime_error);
  EXPECT_THROW(parse_design_query("{\"kind\":\"fft\"}"), std::runtime_error);
  EXPECT_THROW(parse_design_query("{}"), std::runtime_error);
  EXPECT_THROW(
      parse_design_query("{\"kind\":\"iir\",\"constraints\":[{\"kind\":"
                         "\"sideways\",\"metric\":\"x\",\"bound\":1}]}"),
      std::runtime_error);
  EXPECT_THROW(
      parse_design_query("{\"kind\":\"iir\",\"target_ber\":\"high\"}"),
      std::runtime_error);
}

TEST(DesignService, AnswersAViterbiQuery) {
  DesignService service;
  const DesignResponse response = service.submit(small_viterbi_query());
  EXPECT_TRUE(response.feasible);
  EXPECT_FALSE(response.from_archive);
  EXPECT_GT(response.evaluations, 0u);
  EXPECT_EQ(response.store_hits, 0u);  // no store attached
  EXPECT_TRUE(response.best.eval.has_metric("area_mm2"));
  EXPECT_FALSE(response.front.empty());
  EXPECT_EQ(response.front_x, "area_mm2");
  EXPECT_EQ(response.front_y, "ber");
  EXPECT_NE(response.summary.find("best area_mm2"), std::string::npos);
  const std::string json = to_json(response);
  EXPECT_NE(json.find("\"feasible\":true"), std::string::npos);
  EXPECT_NE(json.find("\"front\":[{"), std::string::npos);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.searches_launched, 1u);
  EXPECT_EQ(stats.coalesced, 0u);
}

TEST(DesignService, BatchDeduplicatesIdenticalQueriesIntoOneSearch) {
  DesignService service;
  const std::vector<DesignQuery> batch(4, small_viterbi_query());
  const std::vector<DesignResponse> responses = service.submit_batch(batch);
  ASSERT_EQ(responses.size(), 4u);
  const std::string first = to_json(responses[0]);
  for (const DesignResponse& r : responses) {
    EXPECT_EQ(to_json(r), first);  // byte-identical copies
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.searches_launched, 1u);
  EXPECT_EQ(stats.coalesced, 3u);
}

TEST(DesignService, ConcurrentSubmitsOfTheSameQueryCoalesce) {
  DesignService service;
  const DesignQuery query = small_viterbi_query();
  std::vector<std::string> responses(3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&service, &query, &responses, t] {
      responses[static_cast<std::size_t>(t)] = to_json(service.submit(query));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(responses[1], responses[0]);
  EXPECT_EQ(responses[2], responses[0]);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 3u);
  // Every waiter is either coalesced onto the leader's search or (if it
  // arrived after completion, with no store attached) re-ran the identical
  // deterministic search — byte-identical output either way.
  EXPECT_EQ(stats.searches_launched + stats.coalesced, 3u);
  EXPECT_GE(stats.searches_launched, 1u);
}

TEST(DesignService, WarmStoreAnswersRepeatQueryWithoutEvaluatorCalls) {
  const std::string path = temp_store_path("service_warm.jsonl");
  const DesignQuery query = small_viterbi_query();

  DesignResponse cold;
  {
    ServiceConfig config;
    config.store_path = path;
    DesignService service(config);
    cold = service.submit(query);
    EXPECT_EQ(cold.store_hits, 0u);
    EXPECT_GT(service.store()->stats().appends, 0u);
  }

  ServiceConfig config;
  config.store_path = path;
  DesignService service(config);
  const DesignResponse warm = service.submit(query);

  // The warm search walks the cold trajectory out of the store: identical
  // SearchResult accounting and a bit-identical winner, zero evaluator
  // invocations (every store lookup hit; nothing new was appended).
  EXPECT_EQ(warm.evaluations, cold.evaluations);
  EXPECT_EQ(warm.store_hits, cold.evaluations);
  EXPECT_EQ(warm.feasible, cold.feasible);
  EXPECT_EQ(warm.best.indices, cold.best.indices);
  EXPECT_EQ(warm.best.values, cold.best.values);
  EXPECT_EQ(warm.best.eval.metrics, cold.best.eval.metrics);  // bit-exact
  ASSERT_EQ(warm.front.size(), cold.front.size());
  for (std::size_t i = 0; i < warm.front.size(); ++i) {
    EXPECT_EQ(warm.front[i].indices, cold.front[i].indices);
    EXPECT_EQ(warm.front[i].eval.metrics, cold.front[i].eval.metrics);
  }
  const StoreStats store_stats = service.store()->stats();
  EXPECT_EQ(store_stats.misses, 0u);   // evaluator never consulted
  EXPECT_EQ(store_stats.appends, 0u);  // nothing fresh to record
  std::remove(path.c_str());
}

TEST(DesignService, ArchiveAnswersConstraintOnlyQueriesWithoutSearching) {
  DesignService service;
  const DesignQuery searched = small_viterbi_query();
  const DesignResponse full = service.submit(searched);
  ASSERT_TRUE(full.feasible);
  EXPECT_GT(service.archive_size(searched), 0u);

  // Same requirements (same evaluator scope), constraint-only: answered
  // from the archive without launching another search.
  DesignQuery archive_query = searched;
  archive_query.archive_only = true;
  const DesignResponse archived = service.submit(archive_query);
  EXPECT_TRUE(archived.from_archive);
  EXPECT_TRUE(archived.feasible);
  EXPECT_EQ(archived.evaluations, 0u);
  EXPECT_FALSE(archived.front.empty());
  // The archive holds every searched point, so its best is no worse.
  EXPECT_LE(archived.best.eval.metric("area_mm2"),
            full.best.eval.metric("area_mm2"));

  // Re-tightened constraint set over the same archive: still no search.
  DesignQuery tightened = archive_query;
  tightened.constraints.push_back(
      {search::Constraint::Kind::UpperBound, "ber", searched.target_ber / 2});
  const DesignResponse strict = service.submit(tightened);
  EXPECT_TRUE(strict.from_archive);
  EXPECT_LE(strict.front.size(), archived.front.size());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.searches_launched, 1u);
  EXPECT_EQ(stats.archive_answers, 2u);
}

TEST(DesignService, ArchiveAnswerOnEmptyServiceReportsNoData) {
  DesignService service;
  DesignQuery query = small_viterbi_query();
  query.archive_only = true;
  const DesignResponse response = service.submit(query);
  EXPECT_TRUE(response.from_archive);
  EXPECT_FALSE(response.feasible);
  EXPECT_TRUE(response.front.empty());
  EXPECT_NE(response.summary.find("no archived evaluations"),
            std::string::npos);
  EXPECT_EQ(service.stats().searches_launched, 0u);
}

TEST(DesignService, MixedBatchIsByteIdenticalAtAnyThreadCount) {
  // The acceptance invariant: the response vector of a mixed batch —
  // distinct Viterbi queries, an IIR query, a duplicate, and an
  // archive-only follow-up — is byte-identical at METACORE_THREADS
  // equivalents 1, 2, and 8.
  std::vector<DesignQuery> batch;
  batch.push_back(small_viterbi_query());
  DesignQuery faster = small_viterbi_query();
  faster.throughput_mbps = 2.0;
  batch.push_back(faster);
  batch.push_back(small_iir_query());
  batch.push_back(small_viterbi_query());  // duplicate of [0]
  DesignQuery archive_query = small_viterbi_query();
  archive_query.archive_only = true;
  batch.push_back(archive_query);

  const std::size_t configured = exec::ThreadPool::configured_threads();
  std::vector<std::vector<std::string>> runs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    exec::ThreadPool::set_global_threads(threads);
    DesignService service;  // fresh service: no cross-run archive leakage
    std::vector<std::string> encoded;
    for (const DesignResponse& r : service.submit_batch(batch)) {
      encoded.push_back(to_json(r));
    }
    runs.push_back(std::move(encoded));
  }
  exec::ThreadPool::set_global_threads(configured);

  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[1], runs[0]);
  EXPECT_EQ(runs[2], runs[0]);
  // The duplicate got the same bytes as its original.
  EXPECT_EQ(runs[0][3], runs[0][0]);
  // The archive query ran after its group's search: populated answer.
  EXPECT_NE(runs[0][4].find("\"from_archive\":true"), std::string::npos);
  EXPECT_NE(runs[0][4].find("\"feasible\":true"), std::string::npos);
}

}  // namespace
}  // namespace metacore::serve
