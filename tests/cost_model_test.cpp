// Tests for the TR4101-anchored area/clock model and the Viterbi cost
// evaluation engine.
#include <gtest/gtest.h>

#include "cost/viterbi_cost.hpp"

namespace metacore::cost {
namespace {

TEST(TechnologyParams, LambdaIsQuadraticInFeatureSize) {
  TechnologyParams tech;
  tech.feature_um = 0.35;
  EXPECT_NEAR(tech.area_lambda(), 1.0, 1e-12);
  tech.feature_um = 0.7;
  EXPECT_NEAR(tech.area_lambda(), 4.0, 1e-12);
  tech.feature_um = 0.175;
  EXPECT_NEAR(tech.area_lambda(), 0.25, 1e-12);
}

TEST(TechnologyParams, ClockScalesLinearly) {
  TechnologyParams tech;
  tech.feature_um = 0.175;
  EXPECT_NEAR(tech.clock_scale(), 2.0, 1e-12);
}

TEST(AreaModel, WidthFactorsMonotone) {
  const AreaModelParams params;
  EXPECT_LT(datapath_area_factor(8, params), datapath_area_factor(16, params));
  EXPECT_LT(datapath_area_factor(16, params), datapath_area_factor(32, params));
  EXPECT_NEAR(datapath_area_factor(32, params), 1.0, 1e-12);
  EXPECT_NEAR(multiplier_area_factor(32), 1.0, 1e-12);
  EXPECT_NEAR(multiplier_area_factor(16), 0.25, 1e-12);
  EXPECT_THROW(datapath_area_factor(0, params), std::invalid_argument);
  EXPECT_THROW(multiplier_area_factor(65), std::invalid_argument);
}

TEST(AreaModel, NarrowDatapathClocksFaster) {
  EXPECT_GT(datapath_clock_factor(8), datapath_clock_factor(32));
  EXPECT_NEAR(datapath_clock_factor(32), 1.0, 1e-12);
  EXPECT_LT(datapath_clock_factor(8), 1.6);
}

TEST(AreaModel, MachineAreaMonotoneInResources) {
  const AreaModelParams params;
  const TechnologyParams tech;
  vliw::MachineConfig small;
  small.num_alus = 1;
  small.num_multipliers = 0;
  small.register_file_size = 16;
  vliw::MachineConfig big = small;
  big.num_alus = 8;
  big.num_multipliers = 2;
  big.register_file_size = 128;
  // A multiplier-less config needs num_multipliers >= 0 which validate()
  // accepts.
  EXPECT_LT(machine_area_mm2(small, params, tech),
            machine_area_mm2(big, params, tech));
}

TEST(AreaModel, SramAreaLinearInCapacity) {
  const AreaModelParams params;
  const TechnologyParams tech;
  EXPECT_NEAR(sram_area_mm2(2.0, params, tech),
              2.0 * sram_area_mm2(1.0, params, tech), 1e-12);
  EXPECT_THROW(sram_area_mm2(-1.0, params, tech), std::invalid_argument);
}

TEST(AchievableClock, Tr4101Anchor) {
  TechnologyParams tech;  // 0.35 um, 81 MHz base
  EXPECT_NEAR(achievable_clock_mhz(32, tech), 81.0, 1e-9);
  EXPECT_GT(achievable_clock_mhz(9, tech), 81.0);
}

comm::DecoderSpec soft_spec(int k, int bits) {
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(k);
  spec.traceback_depth = 5 * k;
  spec.kind = comm::DecoderKind::Soft;
  spec.high_res_bits = bits;
  return spec;
}

TEST(ViterbiCost, AreaGrowsWithConstraintLength) {
  double prev = 0.0;
  for (int k : {3, 5, 7, 9}) {
    ViterbiCostQuery query;
    query.spec = soft_spec(k, 3);
    query.throughput_mbps = 1.0;
    const auto result = evaluate_viterbi_cost(query);
    ASSERT_TRUE(result.feasible) << "K=" << k;
    EXPECT_GT(result.area_mm2, prev) << "K=" << k;
    prev = result.area_mm2;
  }
}

TEST(ViterbiCost, AreaGrowsWithThroughput) {
  double prev = 0.0;
  for (double mbps : {0.5, 2.0, 6.0}) {
    ViterbiCostQuery query;
    query.spec = soft_spec(5, 3);
    query.throughput_mbps = mbps;
    const auto result = evaluate_viterbi_cost(query);
    ASSERT_TRUE(result.feasible) << mbps;
    EXPECT_GE(result.area_mm2, prev);
    prev = result.area_mm2;
  }
}

TEST(ViterbiCost, ExtremeThroughputIsInfeasible) {
  ViterbiCostQuery query;
  query.spec = soft_spec(9, 5);
  query.throughput_mbps = 500.0;
  const auto result = evaluate_viterbi_cost(query);
  EXPECT_FALSE(result.feasible);
}

TEST(ViterbiCost, RequiredClockMatchesCyclesTimesThroughput) {
  ViterbiCostQuery query;
  query.spec = soft_spec(5, 3);
  query.throughput_mbps = 2.0;
  const auto result = evaluate_viterbi_cost(query);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.required_clock_mhz, result.cycles_per_bit * 2.0, 1e-9);
  EXPECT_GE(result.cores * result.achievable_clock_mhz,
            result.required_clock_mhz);
}

TEST(ViterbiCost, MemoryGrowsWithDepthAndStates) {
  const double small = decoder_memory_kbits(soft_spec(3, 3), 10);
  const double deep = decoder_memory_kbits(soft_spec(3, 3), 10) +
                      0.0;  // baseline reference
  comm::DecoderSpec deep_spec = soft_spec(3, 3);
  deep_spec.traceback_depth = 63;
  EXPECT_GT(decoder_memory_kbits(deep_spec, 10), small);
  EXPECT_GT(decoder_memory_kbits(soft_spec(9, 3), 10), deep);
}

TEST(ViterbiCost, RejectsNonPositiveThroughput) {
  ViterbiCostQuery query;
  query.spec = soft_spec(3, 3);
  query.throughput_mbps = 0.0;
  EXPECT_THROW(evaluate_viterbi_cost(query), std::invalid_argument);
}

TEST(ViterbiCost, SmallerFeatureSizeShrinksArea) {
  ViterbiCostQuery coarse;
  coarse.spec = soft_spec(5, 3);
  coarse.throughput_mbps = 1.0;
  ViterbiCostQuery fine = coarse;
  fine.tech.feature_um = 0.18;
  const auto a = evaluate_viterbi_cost(coarse);
  const auto b = evaluate_viterbi_cost(fine);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_LT(b.area_mm2, a.area_mm2);
}

}  // namespace
}  // namespace metacore::cost
