// Tests for the HYPER-substitute IIR area/throughput/latency estimator.
#include <gtest/gtest.h>

#include <map>

#include "synth/area.hpp"

namespace metacore::synth {
namespace {

using dsp::StructureKind;

IirCostQuery query(StructureKind kind, double period_us, int bits = 12) {
  IirCostQuery q;
  q.structure = kind;
  q.order = 8;
  q.word_bits = bits;
  q.sample_period_us = period_us;
  return q;
}

TEST(IirCost, BreakdownSumsToTotal) {
  const auto r = evaluate_iir_cost(query(StructureKind::Cascade, 2.0));
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.area_mm2,
              r.exu_area_mm2 + r.register_area_mm2 +
                  r.interconnect_area_mm2 + r.control_area_mm2,
              1e-12);
}

TEST(IirCost, TighterPeriodNeverCheaper) {
  for (const auto kind :
       {StructureKind::Cascade, StructureKind::Parallel,
        StructureKind::DirectForm2}) {
    double prev = 1e300;
    for (double period : {0.5, 1.0, 2.0, 5.0}) {
      const auto r = evaluate_iir_cost(query(kind, period));
      ASSERT_TRUE(r.feasible) << to_string(kind) << " @ " << period;
      EXPECT_LE(r.area_mm2, prev + 1e-12) << to_string(kind);
      prev = r.area_mm2;
    }
  }
}

TEST(IirCost, WiderWordsCostMore) {
  const auto narrow = evaluate_iir_cost(query(StructureKind::Cascade, 2.0, 8));
  const auto wide = evaluate_iir_cost(query(StructureKind::Cascade, 2.0, 20));
  ASSERT_TRUE(narrow.feasible && wide.feasible);
  EXPECT_LT(narrow.area_mm2, wide.area_mm2);
}

TEST(IirCost, LadderInfeasibleAtTightRates) {
  // The ladder's serial recurrence caps its sample rate; cascade sections
  // pipeline and survive to much shorter periods.
  double ladder_limit = 0.0, cascade_limit = 0.0;
  for (double period = 2.0; period >= 0.05; period *= 0.8) {
    if (evaluate_iir_cost(query(StructureKind::LatticeLadder, period)).feasible) {
      ladder_limit = period;
    } else {
      break;
    }
  }
  for (double period = 2.0; period >= 0.05; period *= 0.8) {
    if (evaluate_iir_cost(query(StructureKind::Cascade, period)).feasible) {
      cascade_limit = period;
    } else {
      break;
    }
  }
  EXPECT_LT(cascade_limit, ladder_limit);
}

TEST(IirCost, InfeasibleForAbsurdPeriod) {
  const auto r = evaluate_iir_cost(query(StructureKind::Cascade, 1e-4));
  EXPECT_FALSE(r.feasible);
}

TEST(IirCost, LatencyAtLeastPeriodAtSteadyState) {
  const auto r = evaluate_iir_cost(query(StructureKind::Cascade, 0.4));
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.latency_us, r.throughput_period_us - 1e-12);
  EXPECT_LE(r.throughput_period_us, 0.4 + 1e-9);
}

TEST(IirCost, HyperEraTechnologyScalesAreaUp) {
  IirCostQuery modern = query(StructureKind::Cascade, 2.0);
  modern.tech = cost::TechnologyParams{};  // 0.35 um
  const auto old = evaluate_iir_cost(query(StructureKind::Cascade, 2.0));
  const auto scaled = evaluate_iir_cost(modern);
  ASSERT_TRUE(old.feasible && scaled.feasible);
  // 1.2 um vs 0.35 um: lambda ratio (1.2/0.35)^2 ~ 11.7; clocks differ too,
  // so just require a large separation.
  EXPECT_GT(old.area_mm2, 5.0 * scaled.area_mm2);
}

TEST(IirCost, RegistersIncludeStateAndPipeline) {
  const auto relaxed = evaluate_iir_cost(query(StructureKind::Cascade, 5.0));
  ASSERT_TRUE(relaxed.feasible);
  EXPECT_GE(relaxed.registers, 8);  // at least the state registers
  const auto tight = evaluate_iir_cost(query(StructureKind::Cascade, 0.3));
  ASSERT_TRUE(tight.feasible);
  EXPECT_GT(tight.registers, relaxed.registers);
}

TEST(IirCost, Rejections) {
  EXPECT_THROW(evaluate_iir_cost(query(StructureKind::Cascade, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(evaluate_iir_cost(query(StructureKind::Cascade, 1.0, 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace metacore::synth
