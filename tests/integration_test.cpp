// Cross-module integration tests: miniature versions of the paper's
// headline experiments wired through the full stack.
#include <gtest/gtest.h>

#include "comm/ber.hpp"
#include "core/iir_metacore.hpp"
#include "core/viterbi_metacore.hpp"
#include "cost/viterbi_cost.hpp"

namespace metacore {
namespace {

// Table 1 shape: three decoder instances at fixed 1 Mbps whose areas are
// ordered K=3 < K=5 multires < K=7 multires.
TEST(Integration, Table1AreaOrdering) {
  comm::DecoderSpec i1;
  i1.code = comm::best_rate_half_code(3);
  i1.traceback_depth = 6;
  i1.kind = comm::DecoderKind::Soft;
  i1.high_res_bits = 3;

  comm::DecoderSpec i2;
  i2.code = comm::best_rate_half_code(5);
  i2.traceback_depth = 25;
  i2.kind = comm::DecoderKind::Multires;
  i2.low_res_bits = 1;
  i2.high_res_bits = 3;
  i2.num_high_res_paths = 8;

  comm::DecoderSpec i3 = i2;
  i3.code = comm::best_rate_half_code(7);
  i3.traceback_depth = 35;
  i3.num_high_res_paths = 4;

  double prev = 0.0;
  for (const auto& spec : {i1, i2, i3}) {
    cost::ViterbiCostQuery query;
    query.spec = spec;
    query.throughput_mbps = 1.0;
    const auto result = cost::evaluate_viterbi_cost(query);
    ASSERT_TRUE(result.feasible);
    EXPECT_GT(result.area_mm2, prev);
    prev = result.area_mm2;
  }
  // The K=3 instance lands in the paper's sub-0.5 mm^2 regime.
  cost::ViterbiCostQuery q1;
  q1.spec = i1;
  q1.throughput_mbps = 1.0;
  EXPECT_LT(cost::evaluate_viterbi_cost(q1).area_mm2, 0.6);
}

// Figure 8 shape: multiresolution decoding closes most of the hard->soft
// BER gap, monotone in M.
TEST(Integration, Figure8MultiresOrdering) {
  comm::BerRunConfig cfg;
  cfg.max_bits = 80'000;
  cfg.min_bits = 80'000;
  cfg.max_errors = 1u << 30;

  comm::DecoderSpec base;
  base.code = comm::best_rate_half_code(5);
  base.traceback_depth = 25;

  auto ber_of = [&](comm::DecoderKind kind, int m) {
    comm::DecoderSpec spec = base;
    spec.kind = kind;
    spec.low_res_bits = 1;
    spec.high_res_bits = 3;
    spec.num_high_res_paths = m;
    return comm::measure_ber(spec, 1.0, cfg).ber();
  };

  const double hard = ber_of(comm::DecoderKind::Hard, 1);
  const double m4 = ber_of(comm::DecoderKind::Multires, 4);
  const double m8 = ber_of(comm::DecoderKind::Multires, 8);
  const double soft = ber_of(comm::DecoderKind::Soft, 1);
  EXPECT_GT(hard, m4);
  EXPECT_GT(m4, m8);
  EXPECT_GT(m8, soft);
}

// Table 3 last-row shape: an impossible BER target is reported infeasible.
TEST(Integration, ImpossibleBerTargetIsInfeasible) {
  core::ViterbiRequirements req;
  req.target_ber = 1e-9;
  req.esn0_db = 1.0;
  req.throughput_mbps = 1.0;
  comm::BerRunConfig ber;
  ber.max_bits = 30'000;
  ber.min_bits = 20'000;
  core::ViterbiMetaCore metacore(req, ber);
  search::SearchConfig config;
  config.max_resolution = 1;
  config.max_evaluations = 60;
  const auto result = metacore.search(config);
  EXPECT_FALSE(result.found_feasible);
}

// Table 4 shape at one throughput: the searched best is far below the
// average candidate, and the best structure is quantization-friendly.
TEST(Integration, IirSearchBeatsAverageSubstantially) {
  core::IirMetaCore metacore(core::paper_bandpass_requirements(2.0));
  search::SearchConfig config;
  config.max_resolution = 2;
  config.max_evaluations = 250;
  const auto result = metacore.search(config);
  ASSERT_TRUE(result.found_feasible);
  double sum = 0.0;
  int n = 0;
  for (const auto& p : result.history) {
    if (p.eval.feasible && p.eval.has_metric("area_mm2") &&
        metacore.objective().feasible(p.eval)) {
      sum += p.eval.metric("area_mm2");
      ++n;
    }
  }
  ASSERT_GT(n, 3);
  const double avg = sum / n;
  const double best = result.best.eval.metric("area_mm2");
  EXPECT_LT(best, avg);
}

// The Viterbi cost engine and the BER simulator agree on the trade-off
// direction: higher resolution costs area but buys BER.
TEST(Integration, ResolutionTradeoffIsCoupled) {
  comm::DecoderSpec narrow;
  narrow.code = comm::best_rate_half_code(5);
  narrow.traceback_depth = 25;
  narrow.kind = comm::DecoderKind::Hard;

  comm::DecoderSpec wide = narrow;
  wide.kind = comm::DecoderKind::Soft;
  wide.high_res_bits = 4;

  comm::BerRunConfig cfg;
  cfg.max_bits = 40'000;
  cfg.min_bits = 40'000;
  cfg.max_errors = 1u << 30;
  const double ber_narrow = comm::measure_ber(narrow, 1.0, cfg).ber();
  const double ber_wide = comm::measure_ber(wide, 1.0, cfg).ber();
  EXPECT_LT(ber_wide, ber_narrow);

  cost::ViterbiCostQuery qn, qw;
  qn.spec = narrow;
  qw.spec = wide;
  qn.throughput_mbps = qw.throughput_mbps = 1.0;
  const auto cn = cost::evaluate_viterbi_cost(qn);
  const auto cw = cost::evaluate_viterbi_cost(qw);
  ASSERT_TRUE(cn.feasible && cw.feasible);
  EXPECT_LT(cn.area_mm2, cw.area_mm2);
}

}  // namespace
}  // namespace metacore
