// Tests for the parallel execution layer: thread-pool semantics (exception
// propagation, empty batches, serial fallback, nesting) and the determinism
// guarantees of its users — sharded BER measurement and the multiresolution
// search must produce bit-identical results at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "comm/ber.hpp"
#include "exec/thread_pool.hpp"
#include "search/multires_search.hpp"
#include "util/rng.hpp"

namespace metacore {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyBatchReturnsImmediately) {
  exec::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleThreadRunsInlineOnCaller) {
  exec::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, PropagatesFirstExceptionAndSurvives) {
  exec::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i % 7 == 3) {
                            throw std::runtime_error("work item failed");
                          }
                        }),
      std::runtime_error);
  // The pool must remain fully usable after a throwing batch.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ThrowingItemNeverAbandonsSiblings) {
  // Regression: the inline path (serial pool / nested calls) used to let an
  // exception escape mid-loop, silently skipping every queued sibling. Both
  // paths must drain the whole batch, then rethrow the first error.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(64);
    EXPECT_THROW(
        pool.parallel_for(hits.size(),
                          [&](std::size_t i) {
                            hits[i].fetch_add(1);
                            if (i == 5) {
                              throw std::runtime_error("mid-batch failure");
                            }
                          }),
        std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " skipped at "
                                   << threads << " thread(s)";
    }
  }
}

TEST(ThreadPool, ParallelMapCollectIsolatesFailures) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::set_global_threads(threads);
    std::vector<int> items(50);
    std::iota(items.begin(), items.end(), 0);
    const auto outcomes = exec::parallel_map_collect(items, [](int x) {
      if (x % 10 == 7) throw std::invalid_argument("bad item");
      return x * 2;
    });
    ASSERT_EQ(outcomes.size(), items.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (i % 10 == 7) {
        EXPECT_FALSE(outcomes[i].ok());
        EXPECT_THROW(outcomes[i].rethrow(), std::invalid_argument);
      } else {
        ASSERT_TRUE(outcomes[i].ok());
        EXPECT_EQ(*outcomes[i].value, static_cast<int>(i) * 2);
      }
    }
  }
  exec::ThreadPool::set_global_threads(1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  exec::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(exec::ThreadPool::on_worker_thread());
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPool, ParallelMapPreservesItemOrder) {
  exec::ThreadPool::set_global_threads(4);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  const auto squares =
      exec::parallel_map(items, [](int x) { return x * x; });
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
  exec::ThreadPool::set_global_threads(1);
}

TEST(CounterRng, IsAPureFunctionOfKeyAndCounter) {
  util::CounterRng a(42, 0);
  util::CounterRng b(42, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  EXPECT_EQ(util::CounterRng::at(42, 7), util::CounterRng::at(42, 7));
  EXPECT_NE(util::CounterRng::at(42, 7), util::CounterRng::at(42, 8));
  EXPECT_NE(util::CounterRng::at(42, 7), util::CounterRng::at(43, 7));
}

TEST(CounterRng, AdjacentStreamsDecorrelate) {
  // Crude independence check: bitwise agreement between adjacent substream
  // keys' outputs should hover around 32 of 64 bits.
  double agree = 0.0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t x =
        util::CounterRng::at(util::substream_key(1, 0), i);
    const std::uint64_t y =
        util::CounterRng::at(util::substream_key(1, 1), i);
    agree += __builtin_popcountll(~(x ^ y));
  }
  EXPECT_NEAR(agree / n, 32.0, 1.0);
}

comm::DecoderSpec hard_k3() {
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(3);
  spec.traceback_depth = 15;
  spec.kind = comm::DecoderKind::Hard;
  return spec;
}

TEST(ShardedBer, BitIdenticalAcrossThreadCounts) {
  comm::BerRunConfig cfg;
  cfg.max_bits = 24'000;
  cfg.min_bits = 24'000;
  cfg.shards = 8;
  std::vector<comm::BerPoint> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::set_global_threads(threads);
    runs.push_back(comm::measure_ber(hard_k3(), 1.0, cfg));
  }
  exec::ThreadPool::set_global_threads(1);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].errors.successes, runs[0].errors.successes);
    EXPECT_EQ(runs[i].errors.trials, runs[0].errors.trials);
  }
  EXPECT_GT(runs[0].errors.trials, 0u);
}

TEST(ShardedBer, SingleShardMatchesHistoricalMeasurement) {
  comm::BerRunConfig cfg;
  cfg.max_bits = 20'000;
  cfg.min_bits = 20'000;
  comm::BerRunConfig sharded = cfg;
  sharded.shards = 1;
  const auto a = comm::measure_ber(hard_k3(), 1.0, cfg);
  const auto b = comm::measure_ber(hard_k3(), 1.0, sharded);
  EXPECT_EQ(a.errors.successes, b.errors.successes);
  EXPECT_EQ(a.errors.trials, b.errors.trials);
}

TEST(ShardedBer, RejectsNonPositiveShardCount) {
  comm::BerRunConfig cfg;
  cfg.shards = 0;
  EXPECT_THROW(comm::measure_ber(hard_k3(), 1.0, cfg),
               std::invalid_argument);
}

/// Synthetic landscape with both a smooth objective and a noisy
/// "probabilistic" metric, so the determinism check exercises the Bayesian
/// predictor's evidence-order sensitivity too. Deterministic per point.
search::EvaluateFn synthetic_eval(std::atomic<std::size_t>* calls) {
  return [calls](const std::vector<double>& point, int fidelity) {
    calls->fetch_add(1);
    double v = 0.0;
    for (std::size_t d = 0; d < point.size(); ++d) {
      const double diff = point[d] - 0.5;
      v += diff * diff;
    }
    search::Evaluation e;
    e.metrics["cost"] = v + 0.01 * fidelity;
    // Pseudo-random but point-deterministic BER-like metric.
    const double noise =
        static_cast<double>(util::CounterRng::at(
            17, static_cast<std::uint64_t>(std::llround(v * 1e9)))) /
        static_cast<double>(std::numeric_limits<std::uint64_t>::max());
    e.metrics["ber"] = std::pow(10.0, -2.0 - 3.0 * noise - v);
    e.confidence_weight = 10'000.0;
    return e;
  };
}

search::DesignSpace synthetic_space() {
  std::vector<search::ParameterDef> params;
  for (int d = 0; d < 3; ++d) {
    search::ParameterDef p;
    p.name = "x" + std::to_string(d);
    for (int i = 0; i < 9; ++i) p.values.push_back(i / 8.0);
    p.correlation = search::Correlation::Smooth;
    params.push_back(p);
  }
  return search::DesignSpace(params);
}

TEST(SearchDeterminism, MultiresolutionIdenticalAcrossThreadCounts) {
  search::Objective obj;
  obj.minimize = "cost";
  obj.constraints.push_back(
      {search::Constraint::Kind::UpperBound, "ber", 1e-3});
  search::SearchConfig config;
  config.max_resolution = 2;
  config.regions_per_level = 3;
  config.probabilistic_metric = "ber";

  std::vector<search::SearchResult> results;
  std::vector<std::size_t> call_counts;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::set_global_threads(threads);
    std::atomic<std::size_t> calls{0};
    search::MultiresolutionSearch engine(synthetic_space(), obj,
                                         synthetic_eval(&calls), config);
    results.push_back(engine.run());
    call_counts.push_back(calls.load());
  }
  exec::ThreadPool::set_global_threads(1);

  const auto& ref = results[0];
  EXPECT_GT(ref.evaluations, 0u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].evaluations, ref.evaluations);
    EXPECT_EQ(call_counts[i], call_counts[0]);
    EXPECT_EQ(results[i].best.indices, ref.best.indices);
    // Bit-identical metric values, not just close ones.
    EXPECT_EQ(results[i].best.eval.metrics, ref.best.eval.metrics);
    ASSERT_EQ(results[i].history.size(), ref.history.size());
    for (std::size_t p = 0; p < ref.history.size(); ++p) {
      EXPECT_EQ(results[i].history[p].indices, ref.history[p].indices);
      EXPECT_EQ(results[i].history[p].eval.metrics,
                ref.history[p].eval.metrics);
    }
  }
}

TEST(SearchDeterminism, ExhaustiveIdenticalAcrossThreadCounts) {
  search::Objective obj;
  obj.minimize = "cost";
  std::vector<search::SearchResult> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::set_global_threads(threads);
    std::atomic<std::size_t> calls{0};
    results.push_back(search::exhaustive_search(
        synthetic_space(), obj, synthetic_eval(&calls), 0));
    EXPECT_EQ(calls.load(), synthetic_space().size());
  }
  exec::ThreadPool::set_global_threads(1);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].best.indices, results[0].best.indices);
    EXPECT_EQ(results[i].best.eval.metrics, results[0].best.eval.metrics);
    EXPECT_EQ(results[i].evaluations, results[0].evaluations);
  }
}

}  // namespace
}  // namespace metacore
