// Parameterized coupling sweeps across both MetaCores: every decoder kind
// and every filter family must evaluate to a coherent (performance, cost)
// pair through the full stack.
#include <gtest/gtest.h>

#include <tuple>

#include "core/iir_metacore.hpp"
#include "core/viterbi_metacore.hpp"

namespace metacore::core {
namespace {

// --- Viterbi: (M_frac, R1) grid, all mapping to valid evaluable specs. ----

class ViterbiPointSweep
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

TEST_P(ViterbiPointSweep, EvaluatesToCoherentMetrics) {
  const auto [m_frac, r1, k] = GetParam();
  ViterbiRequirements req;
  req.target_ber = 1e-2;
  req.esn0_db = 2.0;
  req.throughput_mbps = 1.0;
  comm::BerRunConfig ber;
  ber.max_bits = 12'000;
  ber.min_bits = 12'000;
  ber.max_errors = 1u << 30;
  ViterbiMetaCore core(req, ber);

  const std::vector<double> point{static_cast<double>(k), 4, 0,
                                  static_cast<double>(r1), 3, 1, 1, m_frac};
  const auto spec = core.decode_point(point);
  EXPECT_EQ(spec.code.constraint_length, k);
  const auto eval = core.evaluate(point, 0);
  ASSERT_TRUE(eval.feasible) << spec.label();
  EXPECT_GT(eval.metric("area_mm2"), 0.0);
  EXPECT_GE(eval.metric("ber"), 0.0);
  EXPECT_LE(eval.metric("ber_observed"), 1.0);
  EXPECT_GE(eval.metric("cores"), 1.0);
  EXPECT_GE(eval.metric("datapath_bits"), 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    KindAndResolution, ViterbiPointSweep,
    ::testing::Combine(::testing::Values(0.0, 0.25, 1.0),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(3, 5, 7)));

// --- Viterbi: area responds monotonically to throughput at fixed spec. ----

TEST(ViterbiMetaCoreSweep, AreaMonotoneInThroughput) {
  comm::BerRunConfig ber;
  ber.max_bits = 8'192;
  ber.min_bits = 8'192;
  double prev = 0.0;
  for (double mbps : {0.5, 1.5, 4.0}) {
    ViterbiRequirements req;
    req.target_ber = 1e-2;
    req.esn0_db = 2.0;
    req.throughput_mbps = mbps;
    ViterbiMetaCore core(req, ber);
    const auto eval = core.evaluate({5, 4, 0, 1, 3, 1, 1, 0.25}, 0);
    ASSERT_TRUE(eval.feasible);
    EXPECT_GE(eval.metric("area_mm2"), prev);
    prev = eval.metric("area_mm2");
  }
}

// --- IIR: every (structure, family) pair evaluates. -----------------------

class IirPointSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IirPointSweep, EvaluatesToCoherentMetrics) {
  const auto [structure, family] = GetParam();
  auto req = paper_bandpass_requirements(2.0);
  req.explore_family = true;
  IirMetaCore core(req);
  const auto eval = core.evaluate(
      {static_cast<double>(structure), 0, 16, 0.7,
       static_cast<double>(family)},
      0);
  // 16-bit words make everything but some direct forms spec-meeting; either
  // way the evaluation must be well-formed rather than throwing.
  if (eval.feasible) {
    EXPECT_GT(eval.metric("area_mm2"), 0.0);
    EXPECT_GT(eval.metric("latency_us"), 0.0);
    EXPECT_LE(eval.metric("throughput_period_us"), 2.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StructureByFamily, IirPointSweep,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 4)));

// --- IIR: stricter periods never reduce area for a fixed point. -----------

TEST(IirMetaCoreSweep, AreaMonotoneInRate) {
  double prev = 0.0;
  for (double period : {0.5, 1.0, 3.0}) {
    IirMetaCore core(paper_bandpass_requirements(period));
    const auto eval = core.evaluate({3, 0, 12, 0.7, 3}, 0);
    ASSERT_TRUE(eval.feasible) << period;
    // Iterating periods from tight to relaxed: area must not increase.
    if (prev > 0.0) {
      EXPECT_LE(eval.metric("area_mm2"), prev + 1e-9);
    }
    prev = eval.metric("area_mm2");
  }
}

}  // namespace
}  // namespace metacore::core
