// Rate-1/3 code coverage: every decoder family must handle n > 2 symbol
// groups (the paper's formulation is rate k/n; its experiments use 1/2).
#include <gtest/gtest.h>

#include "comm/ber.hpp"
#include "comm/channel.hpp"
#include "comm/multires_viterbi.hpp"
#include "comm/viterbi.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

/// A reasonable rate-1/3 K=5 code (industry-standard generators 25,33,37).
CodeSpec rate_third_code() { return {5, {025, 033, 037}}; }

std::vector<int> random_bits(std::size_t n, std::uint64_t seed) {
  util::Random rng(seed);
  std::vector<int> bits(n);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

TEST(RateThird, EncoderEmitsThreeSymbolsPerBit) {
  ConvolutionalEncoder enc(rate_third_code());
  EXPECT_EQ(enc.encode(std::vector<int>{1, 0, 1}).size(), 9u);
}

TEST(RateThird, NoiselessIdentityAllDecoders) {
  const CodeSpec code = rate_third_code();
  const Trellis trellis(code);
  const auto bits = random_bits(400, 12);
  ConvolutionalEncoder enc(code);
  BpskModulator mod;
  const auto rx = mod.modulate(enc.encode(bits));

  auto hard = make_hard_decoder(trellis, 25, 1.0, 0.5);
  EXPECT_EQ(hard->decode(rx), bits);

  auto soft = make_soft_decoder(trellis, 25, 3, QuantizationMethod::FixedSoft,
                                1.0, 0.5);
  EXPECT_EQ(soft->decode(rx), bits);

  MultiresConfig cfg;
  cfg.traceback_depth = 25;
  cfg.low_res_bits = 1;
  cfg.high_res_bits = 3;
  cfg.num_high_res_paths = 4;
  auto multires = make_multires_decoder(trellis, cfg, 1.0, 0.5);
  EXPECT_EQ(multires->decode(rx), bits);
}

TEST(RateThird, BeatsRateHalfAtEqualEsN0) {
  // More redundancy, better BER at the same per-symbol SNR.
  BerRunConfig cfg;
  cfg.max_bits = 60'000;
  cfg.min_bits = 60'000;
  cfg.max_errors = 1u << 30;

  DecoderSpec third;
  third.code = rate_third_code();
  third.traceback_depth = 25;
  third.kind = DecoderKind::Soft;
  third.high_res_bits = 3;

  DecoderSpec half = third;
  half.code = best_rate_half_code(5);

  const double esn0 = 0.0;
  EXPECT_LT(measure_ber(third, esn0, cfg).ber(),
            measure_ber(half, esn0, cfg).ber());
}

TEST(RateThird, BerHarnessRunsEndToEnd) {
  DecoderSpec spec;
  spec.code = rate_third_code();
  spec.traceback_depth = 25;
  spec.kind = DecoderKind::Multires;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 4;
  BerRunConfig cfg;
  cfg.max_bits = 20'000;
  cfg.min_bits = 20'000;
  cfg.max_errors = 1u << 30;
  const auto curve = measure_ber_curve(spec, {-1.0, 2.0}, cfg);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_GT(curve[0].ber(), curve[1].ber());
}

}  // namespace
}  // namespace metacore::comm
