// Frame-parallel decode layer: decode_frames / FrameDecoder must be
// bit-identical to the per-frame single-stream decoders for every decoder
// kind, constraint length, ISA tier, lane count, and ragged length mix —
// including per-lane renormalization counts, read-only mid-stream flushes,
// and the golden measure_ber values at every thread x lane combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/ber.hpp"
#include "comm/channel.hpp"
#include "comm/frame_decode.hpp"
#include "comm/simd/acs_kernel.hpp"
#include "comm/viterbi.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

DecoderSpec make_spec(DecoderKind kind, int k) {
  DecoderSpec spec;
  spec.code = best_rate_half_code(k);
  spec.traceback_depth = 5 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = std::min(4, spec.code.num_states());
  spec.normalization_terms = 1;
  return spec;
}

std::vector<double> noisy_frame(const CodeSpec& code, std::size_t bits,
                                double esn0_db, std::uint64_t seed,
                                double* sigma) {
  util::Random rng(seed);
  std::vector<int> data(bits);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  ConvolutionalEncoder enc(code);
  BpskModulator mod;
  AwgnChannel channel(esn0_db, 1.0, seed ^ 0xABCD);
  *sigma = channel.noise_sigma();
  return channel.transmit(mod.modulate(enc.encode(data)));
}

/// Restores the dispatched ISA on scope exit.
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::dispatched_isa()) {}
  ~IsaGuard() { simd::force_isa(saved_); }

 private:
  simd::Isa saved_;
};

/// Restores the configured global pool size on scope exit.
class ThreadGuard {
 public:
  ThreadGuard() = default;
  ~ThreadGuard() {
    exec::ThreadPool::set_global_threads(
        exec::ThreadPool::configured_threads());
  }
};

/// Saves and restores METACORE_LANES so lane-resolution tests behave the
/// same whether or not the suite itself was launched under a forced lane
/// count (the CI degenerate-lanes pass sets METACORE_LANES=1).
class LanesEnvGuard {
 public:
  LanesEnvGuard() {
    if (const char* value = std::getenv("METACORE_LANES")) saved_ = value;
  }
  ~LanesEnvGuard() {
    if (saved_.empty()) {
      ::unsetenv("METACORE_LANES");
    } else {
      ::setenv("METACORE_LANES", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

std::vector<simd::Isa> available_isas() {
  std::vector<simd::Isa> isas;
  for (const auto isa : {simd::Isa::Scalar, simd::Isa::Sse4, simd::Isa::Avx2,
                         simd::Isa::Avx512}) {
    if (simd::isa_available(isa)) isas.push_back(isa);
  }
  return isas;
}

/// Reference: each frame decoded by its own standalone single-frame decoder.
std::vector<std::vector<int>> decode_frames_reference(
    const DecoderSpec& spec, const Trellis& trellis, double sigma,
    const std::vector<std::vector<double>>& frames) {
  std::vector<std::vector<int>> out(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    out[i] = spec.make_decoder(trellis, 1.0, sigma)->decode(frames[i]);
  }
  return out;
}

std::vector<std::span<const double>> as_spans(
    const std::vector<std::vector<double>>& frames) {
  std::vector<std::span<const double>> spans;
  spans.reserve(frames.size());
  for (const auto& f : frames) spans.emplace_back(f);
  return spans;
}

// ---------------------------------------------------------------------------
// Lane-count resolution.

TEST(DefaultFrameLanes, FollowsDispatchedIsaWidth) {
  LanesEnvGuard env_guard;
  ASSERT_EQ(::unsetenv("METACORE_LANES"), 0);
  IsaGuard guard;
  for (const auto isa : available_isas()) {
    simd::force_isa(isa);
    EXPECT_EQ(default_frame_lanes(), simd::natural_frame_lanes(isa))
        << simd::to_string(isa);
    EXPECT_GE(default_frame_lanes(), 4u);
  }
}

TEST(DefaultFrameLanes, EnvOverrideAndValidation) {
  LanesEnvGuard env_guard;
  ASSERT_EQ(::setenv("METACORE_LANES", "3", 1), 0);
  EXPECT_EQ(default_frame_lanes(), 3u);
  ASSERT_EQ(::setenv("METACORE_LANES", "1", 1), 0);
  EXPECT_EQ(default_frame_lanes(), 1u);
  for (const char* bad : {"0", "-2", "257", "abc", "4x"}) {
    ASSERT_EQ(::setenv("METACORE_LANES", bad, 1), 0);
    EXPECT_THROW(default_frame_lanes(), std::invalid_argument) << bad;
  }
  // Empty means unset (the `METACORE_LANES= cmd` shell idiom).
  ASSERT_EQ(::setenv("METACORE_LANES", "", 1), 0);
  EXPECT_EQ(default_frame_lanes(),
            simd::natural_frame_lanes(simd::dispatched_isa()));
}

TEST(FrameDecoderCtor, RejectsDegenerateArguments) {
  const Trellis trellis(best_rate_half_code(5));
  const Quantizer q(QuantizationMethod::AdaptiveSoft, 3, 1.0, 0.5);
  EXPECT_THROW(FrameViterbiDecoder(trellis, 0, q, 4), std::invalid_argument);
  EXPECT_THROW(FrameViterbiDecoder(trellis, 25, q, 0), std::invalid_argument);
  EXPECT_NO_THROW(FrameViterbiDecoder(trellis, 25, q, 4));
}

// ---------------------------------------------------------------------------
// decode_frames vs per-frame decoders: every kind x K, ragged lengths
// (including shorter-than-traceback and empty frames), many lane counts.

struct FrameCase {
  DecoderKind kind;
  int k;
};

class FrameSweep : public ::testing::TestWithParam<FrameCase> {};

TEST_P(FrameSweep, BatchMatchesPerFrameAcrossLaneCounts) {
  const auto [kind, k] = GetParam();
  const DecoderSpec spec = make_spec(kind, k);
  const Trellis trellis(spec.code);

  // Ragged mix: long, medium, window-straddling, shorter-than-traceback
  // (5k - 1 steps), single-step, and empty frames, more frames than lanes.
  const std::size_t tb = static_cast<std::size_t>(spec.traceback_depth);
  const std::size_t lengths[] = {4'003, 1'024, tb,  tb - 1, 1'500,
                                 1,     0,     511, 2'048,  tb + 1};
  double sigma = 0.5;
  std::vector<std::vector<double>> frames;
  for (std::size_t i = 0; i < std::size(lengths); ++i) {
    frames.push_back(
        noisy_frame(spec.code, lengths[i], 1.0, 1000 * i + 17 + k, &sigma));
  }
  const auto reference = decode_frames_reference(spec, trellis, sigma, frames);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    // decode() emits one bit per step once the window fills, plus the tail.
    ASSERT_EQ(reference[i].size(), lengths[i] == 0 ? 0u : lengths[i]);
  }

  const auto spans = as_spans(frames);
  for (const std::size_t lanes : {1u, 2u, 3u, 5u, 8u, 16u}) {
    const auto batch = decode_frames(spec, trellis, 1.0, sigma, spans, lanes);
    ASSERT_EQ(batch.size(), frames.size()) << "lanes=" << lanes;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(batch[i], reference[i])
          << "lanes=" << lanes << " frame=" << i << " len=" << lengths[i];
    }
  }
}

TEST_P(FrameSweep, EveryIsaTierMatchesForcedScalar) {
  const auto [kind, k] = GetParam();
  const DecoderSpec spec = make_spec(kind, k);
  const Trellis trellis(spec.code);
  double sigma = 0.5;
  std::vector<std::vector<double>> frames;
  for (std::size_t i = 0; i < 6; ++i) {
    frames.push_back(
        noisy_frame(spec.code, 700 + 301 * i, 0.5, 31 * i + k, &sigma));
  }
  const auto spans = as_spans(frames);

  IsaGuard guard;
  simd::force_isa(simd::Isa::Scalar);
  const auto reference = decode_frames(spec, trellis, 1.0, sigma, spans, 4);
  // The scalar frame path itself must match per-frame decoding.
  EXPECT_EQ(reference, decode_frames_reference(spec, trellis, sigma, frames));

  for (const auto isa : available_isas()) {
    if (isa == simd::Isa::Scalar) continue;
    simd::force_isa(isa);
    for (const std::size_t lanes : {1u, 3u, 4u, 8u, 16u}) {
      EXPECT_EQ(decode_frames(spec, trellis, 1.0, sigma, spans, lanes),
                reference)
          << simd::to_string(isa) << " lanes=" << lanes;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndConstraintLengths, FrameSweep,
    ::testing::Values(FrameCase{DecoderKind::Hard, 3},
                      FrameCase{DecoderKind::Hard, 5},
                      FrameCase{DecoderKind::Hard, 7},
                      FrameCase{DecoderKind::Hard, 9},
                      FrameCase{DecoderKind::Soft, 3},
                      FrameCase{DecoderKind::Soft, 5},
                      FrameCase{DecoderKind::Soft, 7},
                      FrameCase{DecoderKind::Soft, 9},
                      FrameCase{DecoderKind::Multires, 3},
                      FrameCase{DecoderKind::Multires, 5},
                      FrameCase{DecoderKind::Multires, 7},
                      FrameCase{DecoderKind::Multires, 9}));

TEST(DecodeFrames, RejectsMisalignedFrames) {
  const DecoderSpec spec = make_spec(DecoderKind::Soft, 5);
  const Trellis trellis(spec.code);
  const std::vector<double> odd(3, 0.0);  // not a multiple of n = 2
  const std::vector<std::span<const double>> frames{odd};
  EXPECT_THROW(decode_frames(spec, trellis, 1.0, 0.5, frames, 4),
               std::invalid_argument);
  EXPECT_TRUE(decode_frames(spec, trellis, 1.0, 0.5, {}, 4).empty());
}

// ---------------------------------------------------------------------------
// Chunk invariance and read-only flush on the raw FrameDecoder interface.

TEST(FrameDecoder, ChunkBoundariesNeverChangeTheStreams) {
  const DecoderSpec spec = make_spec(DecoderKind::Soft, 5);
  const Trellis trellis(spec.code);
  constexpr std::size_t kLanes = 5;
  constexpr std::size_t kSteps = 3'000;
  double sigma = 0.5;
  std::vector<std::vector<double>> frames;
  for (std::size_t l = 0; l < kLanes; ++l) {
    frames.push_back(noisy_frame(spec.code, kSteps, 1.0, 7 * l + 3, &sigma));
  }

  auto run = [&](std::size_t chunk_steps) {
    auto decoder = spec.make_frame_decoder(trellis, 1.0, sigma, kLanes);
    std::vector<std::vector<int>> bits(kLanes, std::vector<int>(kSteps));
    std::vector<const double*> rx(kLanes);
    std::vector<int*> out(kLanes);
    std::size_t emitted = 0;
    for (std::size_t begin = 0; begin < kSteps; begin += chunk_steps) {
      const std::size_t steps = std::min(chunk_steps, kSteps - begin);
      for (std::size_t l = 0; l < kLanes; ++l) {
        rx[l] = frames[l].data() + begin * 2;
        out[l] = bits[l].data() + emitted;
      }
      emitted += decoder->decode_chunk(rx.data(), steps, out.data());
    }
    for (auto& b : bits) b.resize(emitted);
    for (std::size_t l = 0; l < kLanes; ++l) {
      const auto tail = decoder->flush(l);
      bits[l].insert(bits[l].end(), tail.begin(), tail.end());
    }
    return bits;
  };

  const auto reference = run(kSteps);  // one shot
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{24}, std::size_t{1021},
                                  std::size_t{1024}}) {
    EXPECT_EQ(run(chunk), reference) << "chunk=" << chunk;
  }
  // And each lane equals its standalone decode.
  for (std::size_t l = 0; l < kLanes; ++l) {
    EXPECT_EQ(reference[l],
              spec.make_decoder(trellis, 1.0, sigma)->decode(frames[l]))
        << "lane " << l;
  }
}

TEST(FrameDecoder, FlushIsReadOnlyAtEveryBoundary) {
  // Flushing mid-stream then continuing must not perturb later bits: decode
  // the same lanes twice, once flushing after every chunk, and compare.
  const DecoderSpec spec = make_spec(DecoderKind::Multires, 5);
  const Trellis trellis(spec.code);
  constexpr std::size_t kLanes = 3;
  constexpr std::size_t kSteps = 640;
  double sigma = 0.5;
  std::vector<std::vector<double>> frames;
  for (std::size_t l = 0; l < kLanes; ++l) {
    frames.push_back(noisy_frame(spec.code, kSteps, 1.0, 5 * l + 1, &sigma));
  }

  auto run = [&](bool flush_every_chunk) {
    auto decoder = spec.make_frame_decoder(trellis, 1.0, sigma, kLanes);
    std::vector<std::vector<int>> bits(kLanes, std::vector<int>(kSteps));
    std::vector<const double*> rx(kLanes);
    std::vector<int*> out(kLanes);
    std::size_t emitted = 0;
    for (std::size_t begin = 0; begin < kSteps; begin += 100) {
      const std::size_t steps = std::min<std::size_t>(100, kSteps - begin);
      for (std::size_t l = 0; l < kLanes; ++l) {
        rx[l] = frames[l].data() + begin * 2;
        out[l] = bits[l].data() + emitted;
      }
      emitted += decoder->decode_chunk(rx.data(), steps, out.data());
      if (flush_every_chunk) {
        for (std::size_t l = 0; l < kLanes; ++l) (void)decoder->flush(l);
      }
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      const auto tail = decoder->flush(l);
      bits[l].resize(emitted);
      bits[l].insert(bits[l].end(), tail.begin(), tail.end());
    }
    return bits;
  };

  EXPECT_EQ(run(true), run(false));
}

// ---------------------------------------------------------------------------
// Per-lane renormalization: with a lowered threshold every lane must report
// exactly the count its standalone decoder reports, even though the lanes
// renormalize at different steps.

TEST(FrameDecoder, PerLaneRenormMatchesStandaloneCounts) {
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);
  constexpr std::size_t kLanes = 6;
  constexpr std::size_t kSteps = 60'000;
  constexpr std::int64_t kThreshold = std::int64_t{1} << 12;
  double sigma = 0.5;
  const Quantizer quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0, sigma);

  std::vector<std::vector<double>> frames;
  for (std::size_t l = 0; l < kLanes; ++l) {
    // Different noise power per lane so renorm cadences diverge.
    frames.push_back(
        noisy_frame(code, kSteps, 0.5 * static_cast<double>(l), 911 + l,
                    &sigma));
  }

  IsaGuard guard;
  for (const auto isa : available_isas()) {
    simd::force_isa(isa);
    FrameViterbiDecoder frame_dec(trellis, 25, quantizer, kLanes);
    frame_dec.set_normalize_threshold_for_test(kThreshold);
    std::vector<std::vector<int>> bits(kLanes, std::vector<int>(kSteps));
    std::vector<const double*> rx(kLanes);
    std::vector<int*> out(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
      rx[l] = frames[l].data();
      out[l] = bits[l].data();
    }
    const std::size_t emitted =
        frame_dec.decode_chunk(rx.data(), kSteps, out.data());

    std::vector<std::int64_t> lane_norms;
    for (std::size_t l = 0; l < kLanes; ++l) {
      ViterbiDecoder solo(trellis, 25, quantizer);
      solo.set_normalize_threshold_for_test(kThreshold);
      std::vector<int> solo_bits(kSteps);
      solo_bits.resize(solo.decode_block(frames[l], solo_bits));
      ASSERT_EQ(solo_bits.size(), emitted);
      bits[l].resize(emitted);
      EXPECT_EQ(bits[l], solo_bits)
          << simd::to_string(isa) << " lane " << l;
      EXPECT_EQ(frame_dec.normalizations(l), solo.normalizations())
          << simd::to_string(isa) << " lane " << l;
      EXPECT_EQ(frame_dec.flush(l), solo.flush())
          << simd::to_string(isa) << " lane " << l;
      lane_norms.push_back(solo.normalizations());
      EXPECT_GT(solo.normalizations(), 0) << "lane " << l;
    }
    // The lanes genuinely renormalized on different cadences.
    EXPECT_GT(*std::max_element(lane_norms.begin(), lane_norms.end()),
              *std::min_element(lane_norms.begin(), lane_norms.end()));
  }
}

// ---------------------------------------------------------------------------
// Golden measure_ber values (copied from comm_kernel_equivalence_test's
// pre-kernel goldens) must survive every thread x lane combination, and
// lane-count choice must never change any sharded measurement.

TEST(FrameBerGolden, GoldenValuesHoldAtEveryThreadAndLaneCount) {
  ThreadGuard thread_guard;
  DecoderSpec hard5 = make_spec(DecoderKind::Hard, 5);
  DecoderSpec multires3 = make_spec(DecoderKind::Multires, 3);

  for (const int threads : {1, 2, 8}) {
    exec::ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
    for (const int lanes : {0, 1, 2, 3, 5, 16}) {
      BerRunConfig cfg;
      cfg.max_bits = 20'000;
      cfg.min_bits = 10'000;
      cfg.max_errors = 2'000;
      cfg.shards = 8;
      cfg.lanes = lanes;
      const auto hard = measure_ber(hard5, 2.0, cfg);
      EXPECT_EQ(hard.errors.successes, 31ull)
          << "threads=" << threads << " lanes=" << lanes;
      EXPECT_EQ(hard.errors.trials, 20'000ull)
          << "threads=" << threads << " lanes=" << lanes;
      const auto multires = measure_ber(multires3, 2.0, cfg);
      EXPECT_EQ(multires.errors.successes, 24ull)
          << "threads=" << threads << " lanes=" << lanes;
      EXPECT_EQ(multires.errors.trials, 20'000ull)
          << "threads=" << threads << " lanes=" << lanes;
    }
  }
}

TEST(FrameBerGolden, DecisionStoppingIdenticalAcrossLaneCounts) {
  ThreadGuard thread_guard;
  exec::ThreadPool::set_global_threads(2);
  const DecoderSpec spec = make_spec(DecoderKind::Hard, 5);
  BerRunConfig cfg;
  cfg.max_bits = 100'000;
  cfg.min_bits = 8'192;
  cfg.max_errors = 1u << 30;
  cfg.decision_ber = 1e-2;
  cfg.shards = 8;
  cfg.lanes = 1;
  const auto reference = measure_ber(spec, 2.0, cfg);
  EXPECT_EQ(reference.errors.successes, 74ull);
  EXPECT_EQ(reference.errors.trials, 65'536ull);
  for (const int lanes : {0, 2, 5, 8, 16}) {
    cfg.lanes = lanes;
    const auto point = measure_ber(spec, 2.0, cfg);
    EXPECT_EQ(point.errors.successes, reference.errors.successes)
        << "lanes=" << lanes;
    EXPECT_EQ(point.errors.trials, reference.errors.trials)
        << "lanes=" << lanes;
  }
  cfg.lanes = -1;
  EXPECT_THROW(measure_ber(spec, 2.0, cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Frame-kernel dispatch accessors.

TEST(FrameKernelDispatch, AccessorsResolveOnEveryAvailableTier) {
  IsaGuard guard;
  for (const auto isa : available_isas()) {
    simd::force_isa(isa);
    EXPECT_NE(simd::frame_viterbi_acs(), nullptr) << simd::to_string(isa);
    EXPECT_NE(simd::frame_multires_acs(), nullptr) << simd::to_string(isa);
    EXPECT_EQ(simd::frame_viterbi_acs(), simd::frame_viterbi_acs(isa));
    EXPECT_EQ(simd::frame_multires_acs(), simd::frame_multires_acs(isa));
    EXPECT_GE(simd::natural_frame_lanes(isa), 4u);
  }
}

}  // namespace
}  // namespace metacore::comm
