// Tests for the design-space formulation.
#include <gtest/gtest.h>

#include <limits>

#include "search/parameter.hpp"

namespace metacore::search {
namespace {

DesignSpace small_space() {
  return DesignSpace({
      {"a", {1.0, 2.0, 3.0}, false, Correlation::Monotonic},
      {"b", {10.0, 20.0}, false, Correlation::NonCorrelated},
  });
}

TEST(DesignSpace, SizeIsProductOfDomains) {
  EXPECT_EQ(small_space().size(), 6u);
}

TEST(DesignSpace, SizeSaturatesForHugeSpaces) {
  std::vector<ParameterDef> params;
  for (int d = 0; d < 20; ++d) {
    ParameterDef p;
    p.name = "p" + std::to_string(d);
    p.values.assign(1000, 0.0);
    for (int i = 0; i < 1000; ++i) p.values[static_cast<std::size_t>(i)] = i;
    params.push_back(p);
  }
  EXPECT_EQ(DesignSpace(params).size(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(DesignSpace, ValuesAtMapsIndices) {
  const auto space = small_space();
  EXPECT_EQ(space.values_at({0, 1}), (std::vector<double>{1.0, 20.0}));
  EXPECT_EQ(space.values_at({2, 0}), (std::vector<double>{3.0, 10.0}));
}

TEST(DesignSpace, NormalizedCoordinates) {
  const auto space = small_space();
  EXPECT_EQ(space.normalized({0, 0}), (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(space.normalized({2, 1}), (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(space.normalized({1, 0}), (std::vector<double>{0.5, 0.0}));
}

TEST(DesignSpace, IndexValidation) {
  const auto space = small_space();
  EXPECT_THROW(space.values_at({0}), std::out_of_range);
  EXPECT_THROW(space.values_at({3, 0}), std::out_of_range);
  EXPECT_THROW(space.values_at({0, -1}), std::out_of_range);
}

TEST(DesignSpace, FindByName) {
  const auto space = small_space();
  EXPECT_EQ(space.find("a"), 0);
  EXPECT_EQ(space.find("b"), 1);
  EXPECT_EQ(space.find("zzz"), -1);
}

TEST(DesignSpace, RejectsDegenerateDefinitions) {
  EXPECT_THROW(DesignSpace({}), std::invalid_argument);
  EXPECT_THROW(DesignSpace({{"", {1.0}, false, Correlation::Smooth}}),
               std::invalid_argument);
  EXPECT_THROW(DesignSpace({{"x", {}, false, Correlation::Smooth}}),
               std::invalid_argument);
}

TEST(Correlation, Names) {
  EXPECT_EQ(to_string(Correlation::NonCorrelated), "non-correlated");
  EXPECT_EQ(to_string(Correlation::Probabilistic), "probabilistic");
}

}  // namespace
}  // namespace metacore::search
