// Tests for the Jacobi elliptic function machinery behind elliptic filter
// design.
#include <gtest/gtest.h>

#include "dsp/elliptic.hpp"

namespace metacore::dsp {
namespace {

using Cx = std::complex<double>;

TEST(EllipK, KnownValues) {
  // K(0) = pi/2; K(0.5) = 1.68575; K(0.9) = 2.28055 (Abramowitz & Stegun).
  EXPECT_NEAR(ellipk(0.0), M_PI / 2.0, 1e-12);
  EXPECT_NEAR(ellipk(0.5), 1.6857503548, 1e-9);
  EXPECT_NEAR(ellipk(0.9), 2.2805491384, 1e-9);
}

TEST(EllipK, DivergesTowardUnitModulus) {
  EXPECT_GT(ellipk(0.9999), 5.0);
  EXPECT_THROW(ellipk(1.0), std::invalid_argument);
  EXPECT_THROW(ellipk(-0.1), std::invalid_argument);
}

TEST(LandenSequence, DecreasesRapidly) {
  const auto seq = landen_sequence(0.95);
  ASSERT_FALSE(seq.empty());
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_LT(seq[i], seq[i - 1]);
  }
  EXPECT_LT(seq.back(), 1e-15);
}

TEST(JacobiFunctions, BoundaryValues) {
  const double k = 0.8;
  // cd(0) = 1, cd(K) = 0 (u normalized to quarter periods).
  EXPECT_NEAR(std::abs(cde(Cx{0.0, 0.0}, k) - Cx{1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(cde(Cx{1.0, 0.0}, k)), 0.0, 1e-12);
  // sn(0) = 0, sn(K) = 1.
  EXPECT_NEAR(std::abs(sne(Cx{0.0, 0.0}, k)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sne(Cx{1.0, 0.0}, k) - Cx{1.0, 0.0}), 0.0, 1e-12);
}

TEST(JacobiFunctions, DegenerateToTrigAtZeroModulus) {
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    EXPECT_NEAR(sne(Cx{u, 0.0}, 0.0).real(), std::sin(u * M_PI / 2.0), 1e-12);
    EXPECT_NEAR(cde(Cx{u, 0.0}, 0.0).real(), std::cos(u * M_PI / 2.0), 1e-12);
  }
}

TEST(JacobiFunctions, AsneInvertsSne) {
  const double k = 0.7;
  for (double u = 0.05; u < 1.0; u += 0.1) {
    const Cx w = sne(Cx{u, 0.0}, k);
    const Cx u_back = asne(w, k);
    EXPECT_NEAR(u_back.real(), u, 5e-5) << u;
    EXPECT_NEAR(u_back.imag(), 0.0, 5e-5) << u;
  }
}

TEST(JacobiFunctions, AsneHandlesImaginaryArgument) {
  // The filter design evaluates asne(j/eps, k1); verify the inverse
  // relation sne(asne(w)) = w holds for imaginary w.
  const double k = 0.05;
  const Cx w{0.0, 3.0};
  const Cx u = asne(w, k);
  const Cx w_back = sne(u, k);
  EXPECT_NEAR(w_back.real(), w.real(), 1e-4);
  EXPECT_NEAR(w_back.imag(), w.imag(), 1e-4);
}

TEST(DegreeEquation, ConsistentWithMinOrder) {
  // For any k1 and order N, the k from the degree equation should make the
  // minimum-order formula return exactly N (within its own ceiling).
  for (int n : {3, 4, 5, 6, 8}) {
    const double k1 = 0.005;
    const double k = solve_degree_equation(n, k1);
    ASSERT_GT(k, 0.0);
    ASSERT_LT(k, 1.0);
    EXPECT_EQ(elliptic_min_order(k, k1), n) << n;
  }
}

TEST(DegreeEquation, SelectivityImprovesWithOrder) {
  // Higher order -> can afford k closer to 1 (narrower transition band).
  const double k1 = 0.01;
  double prev = 0.0;
  for (int n : {2, 3, 4, 5, 6}) {
    const double k = solve_degree_equation(n, k1);
    EXPECT_GT(k, prev) << n;
    prev = k;
  }
}

TEST(DegreeEquation, Rejections) {
  EXPECT_THROW(solve_degree_equation(0, 0.1), std::invalid_argument);
  EXPECT_THROW(solve_degree_equation(3, 0.0), std::invalid_argument);
  EXPECT_THROW(solve_degree_equation(3, 1.0), std::invalid_argument);
  EXPECT_THROW(elliptic_min_order(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(elliptic_min_order(0.5, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace metacore::dsp
