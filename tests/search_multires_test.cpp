// Tests for the multiresolution search engine on synthetic landscapes where
// the global optimum is known.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "search/multires_search.hpp"

namespace metacore::search {
namespace {

/// Dense 1D..3D quadratic bowl: minimum at a known grid point.
DesignSpace bowl_space(int dims, int points) {
  std::vector<ParameterDef> params;
  for (int d = 0; d < dims; ++d) {
    ParameterDef p;
    p.name = "x" + std::to_string(d);
    for (int i = 0; i < points; ++i) {
      p.values.push_back(static_cast<double>(i) / (points - 1));
    }
    p.correlation = Correlation::Smooth;
    params.push_back(p);
  }
  return DesignSpace(params);
}

// The count is atomic: evaluators run concurrently on the exec pool.
EvaluateFn bowl_eval(std::vector<double> optimum,
                     std::atomic<std::size_t>* count = nullptr) {
  return [optimum, count](const std::vector<double>& point, int) {
    if (count) count->fetch_add(1);
    double v = 0.0;
    for (std::size_t d = 0; d < point.size(); ++d) {
      const double diff = point[d] - optimum[d];
      v += diff * diff;
    }
    Evaluation e;
    e.metrics["cost"] = v;
    return e;
  };
}

Objective minimize_cost() {
  Objective obj;
  obj.minimize = "cost";
  return obj;
}

TEST(MultiresolutionSearch, FindsBowlMinimum) {
  const DesignSpace space = bowl_space(2, 33);
  const std::vector<double> optimum{0.40625, 0.59375};  // on the grid
  SearchConfig config;
  config.initial_points_per_dim = 3;
  config.max_resolution = 5;
  config.regions_per_level = 2;
  MultiresolutionSearch engine(space, minimize_cost(), bowl_eval(optimum),
                               config);
  const SearchResult result = engine.run();
  ASSERT_TRUE(result.found_feasible);
  EXPECT_NEAR(result.best.values[0], optimum[0], 1.0 / 32.0);
  EXPECT_NEAR(result.best.values[1], optimum[1], 1.0 / 32.0);
}

TEST(MultiresolutionSearch, UsesFarFewerEvaluationsThanExhaustive) {
  const DesignSpace space = bowl_space(3, 17);  // 4913 points
  const std::vector<double> optimum{0.25, 0.75, 0.5};
  std::atomic<std::size_t> calls{0};
  SearchConfig config;
  config.max_resolution = 4;
  config.regions_per_level = 2;
  MultiresolutionSearch engine(space, minimize_cost(),
                               bowl_eval(optimum, &calls), config);
  const SearchResult result = engine.run();
  ASSERT_TRUE(result.found_feasible);
  EXPECT_LT(result.evaluations, space.size() / 4);
  EXPECT_LT(result.best.eval.metric("cost"), 0.02);
}

TEST(MultiresolutionSearch, MatchesExhaustiveOnSmallSpace) {
  const DesignSpace space = bowl_space(2, 9);
  const std::vector<double> optimum{0.375, 0.625};
  SearchConfig config;
  config.max_resolution = 4;
  config.regions_per_level = 3;
  MultiresolutionSearch engine(space, minimize_cost(), bowl_eval(optimum),
                               config);
  const SearchResult multires = engine.run();
  const SearchResult exhaustive =
      exhaustive_search(space, minimize_cost(), bowl_eval(optimum), 0);
  ASSERT_TRUE(multires.found_feasible);
  EXPECT_NEAR(multires.best.eval.metric("cost"),
              exhaustive.best.eval.metric("cost"), 1e-12);
}

TEST(MultiresolutionSearch, RespectsEvaluationBudget) {
  const DesignSpace space = bowl_space(3, 33);
  SearchConfig config;
  config.max_evaluations = 40;
  config.max_resolution = 6;
  MultiresolutionSearch engine(space, minimize_cost(),
                               bowl_eval({0.5, 0.5, 0.5}), config);
  const SearchResult result = engine.run();
  EXPECT_LE(result.evaluations, 40u);
}

TEST(MultiresolutionSearch, HandlesConstraints) {
  // Minimize x subject to y >= 0.5 (lower bound): optimum at x=0, y>=0.5.
  const DesignSpace space = bowl_space(2, 17);
  Objective obj;
  obj.minimize = "x";
  obj.constraints.push_back({Constraint::Kind::LowerBound, "y", 0.5});
  auto eval = [](const std::vector<double>& point, int) {
    Evaluation e;
    e.metrics["x"] = point[0];
    e.metrics["y"] = point[1];
    return e;
  };
  SearchConfig config;
  config.max_resolution = 4;
  MultiresolutionSearch engine(space, obj, eval, config);
  const SearchResult result = engine.run();
  ASSERT_TRUE(result.found_feasible);
  EXPECT_NEAR(result.best.values[0], 0.0, 1e-9);
  EXPECT_GE(result.best.values[1], 0.5);
}

TEST(MultiresolutionSearch, ProbabilisticConstraintPrunesButConverges) {
  // "ber" falls exponentially along x; feasible region is x >= ~0.6.
  const DesignSpace space = bowl_space(1, 33);
  Objective obj;
  obj.minimize = "area";
  obj.constraints.push_back({Constraint::Kind::UpperBound, "ber", 1e-3});
  auto eval = [](const std::vector<double>& point, int) {
    Evaluation e;
    e.metrics["ber"] = std::pow(10.0, -5.0 * point[0]);  // 1 .. 1e-5
    e.metrics["area"] = 1.0 + 10.0 * point[0];           // grows with x
    e.confidence_weight = 1e6;
    return e;
  };
  SearchConfig config;
  config.max_resolution = 5;
  config.probabilistic_metric = "ber";
  MultiresolutionSearch engine(space, obj, eval, config);
  const SearchResult result = engine.run();
  ASSERT_TRUE(result.found_feasible);
  // Optimum: smallest x with 10^(-5x) <= 1e-3, i.e. x = 0.6.
  EXPECT_NEAR(result.best.values[0], 0.6, 0.07);
}

TEST(MultiresolutionSearch, HistoryHasDistinctPoints) {
  const DesignSpace space = bowl_space(2, 9);
  SearchConfig config;
  config.max_resolution = 3;
  MultiresolutionSearch engine(space, minimize_cost(),
                               bowl_eval({0.5, 0.5}), config);
  const SearchResult result = engine.run();
  std::set<std::vector<int>> seen;
  for (const auto& p : result.history) {
    EXPECT_TRUE(seen.insert(p.indices).second) << "duplicate history entry";
  }
}

TEST(MultiresolutionSearch, RejectsBadConfig) {
  const DesignSpace space = bowl_space(1, 5);
  SearchConfig config;
  config.refined_points_per_dim = 1;
  EXPECT_THROW(MultiresolutionSearch(space, minimize_cost(),
                                     bowl_eval({0.5}), config),
               std::invalid_argument);
  EXPECT_THROW(MultiresolutionSearch(space, minimize_cost(), nullptr, {}),
               std::invalid_argument);
}

TEST(MultiresolutionSearch, BadConfigMessagesNameFieldAndValue) {
  const DesignSpace space = bowl_space(1, 5);
  const auto expect_message = [&](SearchConfig config,
                                  const std::string& needle) {
    try {
      MultiresolutionSearch(space, minimize_cost(), bowl_eval({0.5}), config);
      FAIL() << "expected std::invalid_argument mentioning " << needle;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  SearchConfig config;
  config.initial_points_per_dim = 0;
  expect_message(config, "initial_points_per_dim must be >= 1 (got 0)");
  config = {};
  config.max_initial_evaluations = -3;
  expect_message(config, "max_initial_evaluations must be >= 1 (got -3)");
  config = {};
  config.max_resolution = -1;
  expect_message(config, "max_resolution must be >= 0 (got -1)");
  config = {};
  config.regions_per_level = 0;
  expect_message(config, "regions_per_level must be >= 1 (got 0)");
  config = {};
  config.refined_points_per_dim = 1;
  expect_message(config, "refined_points_per_dim must be >= 2 (got 1)");
  config = {};
  config.max_evaluations = 0;
  expect_message(config, "max_evaluations must be > 0");
  config = {};
  config.retry.max_attempts = 0;  // surfaced by the guarded evaluator
  EXPECT_THROW(MultiresolutionSearch(space, minimize_cost(),
                                     bowl_eval({0.5}), config),
               std::invalid_argument);
}

TEST(MultiresolutionSearch, GuardDisabledMatchesGuardedOnCleanEvaluator) {
  // The guard must be a pure pass-through when nothing fails.
  const DesignSpace space = bowl_space(2, 9);
  SearchConfig guarded;
  SearchConfig unguarded;
  unguarded.guard_evaluations = false;
  MultiresolutionSearch a(space, minimize_cost(), bowl_eval({0.4, 0.6}),
                          guarded);
  MultiresolutionSearch b(space, minimize_cost(), bowl_eval({0.4, 0.6}),
                          unguarded);
  const SearchResult ra = a.run();
  const SearchResult rb = b.run();
  EXPECT_EQ(ra.evaluations, rb.evaluations);
  EXPECT_EQ(ra.best.indices, rb.best.indices);
  EXPECT_EQ(ra.best.eval.metrics, rb.best.eval.metrics);
  EXPECT_EQ(ra.failures, robust::FailureCounters{});
  EXPECT_EQ(rb.failures, robust::FailureCounters{});
}

TEST(ExhaustiveSearch, VisitsEveryPoint) {
  const DesignSpace space = bowl_space(2, 5);
  std::atomic<std::size_t> calls{0};
  const SearchResult result = exhaustive_search(
      space, minimize_cost(), bowl_eval({0.5, 0.5}, &calls), 0);
  EXPECT_EQ(calls, 25u);
  EXPECT_EQ(result.evaluations, 25u);
  EXPECT_EQ(result.history.size(), 25u);
}

TEST(ExhaustiveSearch, RejectsHugeSpaces) {
  const DesignSpace space = bowl_space(3, 201);
  EXPECT_THROW(
      exhaustive_search(space, minimize_cost(), bowl_eval({0.5, 0.5, 0.5}), 0,
                        /*max_points=*/1000),
      std::invalid_argument);
}

TEST(VerifyTopCandidates, CorrectsNoisyWinner) {
  // Fidelity 0 lies about the best point; fidelity 1 tells the truth. The
  // verification pass must demote the liar.
  const DesignSpace space = bowl_space(1, 11);
  Objective obj;
  obj.minimize = "area";
  obj.constraints.push_back({Constraint::Kind::UpperBound, "ber", 1e-3});
  auto eval = [](const std::vector<double>& point, int fidelity) {
    Evaluation e;
    const bool cheat_zone = point[0] < 0.35;
    // Low fidelity reports the cheat zone as meeting BER; high fidelity
    // reveals it does not. Points >= 0.6 genuinely meet it.
    if (fidelity == 0 && cheat_zone) {
      e.metrics["ber"] = 1e-6;
    } else {
      e.metrics["ber"] = point[0] >= 0.6 ? 1e-5 : 1e-1;
    }
    e.metrics["area"] = 1.0 + point[0];
    return e;
  };
  SearchConfig config;
  config.max_resolution = 2;
  MultiresolutionSearch engine(space, obj, eval, config);
  SearchResult result = engine.run();
  // The noisy search may or may not fall for the cheat zone; verification
  // must land on a genuinely feasible point regardless.
  result = verify_top_candidates(std::move(result), space, obj, eval, 5, 1);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_GE(result.best.values[0], 0.6);
}

}  // namespace
}  // namespace metacore::search
