// Tests for BPSK modulation and the AWGN channel statistics.
#include <gtest/gtest.h>

#include "comm/channel.hpp"
#include "util/math.hpp"

namespace metacore::comm {
namespace {

TEST(BpskModulator, AntipodalMapping) {
  const BpskModulator mod(2.0);
  EXPECT_DOUBLE_EQ(mod.modulate(0), -2.0);
  EXPECT_DOUBLE_EQ(mod.modulate(1), 2.0);
  const std::vector<int> bits{1, 0, 1};
  EXPECT_EQ(mod.modulate(bits), (std::vector<double>{2.0, -2.0, 2.0}));
}

TEST(AwgnChannel, NoiseSigmaMatchesEsN0) {
  // Es/N0 = 3 dB, Es = 1: N0 = 10^(-0.3), sigma = sqrt(N0/2).
  AwgnChannel channel(3.0, 1.0, 1);
  const double n0 = 1.0 / util::db_to_linear(3.0);
  EXPECT_NEAR(channel.noise_sigma(), std::sqrt(n0 / 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(channel.esn0_db(), 3.0);
}

TEST(AwgnChannel, EmpiricalNoiseMoments) {
  AwgnChannel channel(0.0, 1.0, 9);  // sigma = sqrt(0.5)
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double noise = channel.transmit(0.0);
    sum += noise;
    sum2 += noise * noise;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum2 / kN, 0.5, 0.01);
}

TEST(AwgnChannel, UncodedBerMatchesTheory) {
  // Hard-sliced uncoded BPSK at Es/N0 = 4 dB must match Q(sqrt(2 Es/N0)).
  AwgnChannel channel(4.0, 1.0, 21);
  const BpskModulator mod;
  int errors = 0;
  constexpr int kN = 400'000;
  for (int i = 0; i < kN; ++i) {
    const int bit = i & 1;
    const double rx = channel.transmit(mod.modulate(bit));
    errors += (rx >= 0.0 ? 1 : 0) != bit;
  }
  const double theory = util::bpsk_ber(util::db_to_linear(4.0));
  EXPECT_NEAR(static_cast<double>(errors) / kN, theory, theory * 0.15);
}

TEST(AwgnChannel, DeterministicPerSeed) {
  AwgnChannel a(2.0, 1.0, 5), b(2.0, 1.0, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.transmit(1.0), b.transmit(1.0));
  }
}

TEST(AwgnChannel, RejectsNonPositiveEnergy) {
  EXPECT_THROW(AwgnChannel(1.0, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace metacore::comm
