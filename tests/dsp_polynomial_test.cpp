// Unit tests for polynomial algebra and root finding.
#include <gtest/gtest.h>

#include "dsp/polynomial.hpp"

namespace metacore::dsp {
namespace {

TEST(PolyEval, HornerMatchesDirect) {
  // p(x) = 1 + 2x + 3x^2 at x = 2 -> 17.
  const Poly p{1.0, 2.0, 3.0};
  EXPECT_NEAR(std::abs(poly_eval(p, Complex{2.0, 0.0}) - Complex{17.0, 0.0}),
              0.0, 1e-12);
  // Complex point: p(i) = 1 + 2i - 3 = -2 + 2i.
  const Complex at_i = poly_eval(p, Complex{0.0, 1.0});
  EXPECT_NEAR(at_i.real(), -2.0, 1e-12);
  EXPECT_NEAR(at_i.imag(), 2.0, 1e-12);
}

TEST(PolyMul, ConvolvesCoefficients) {
  // (1 + x)(1 - x) = 1 - x^2.
  const Poly product = poly_mul(Poly{1.0, 1.0}, Poly{1.0, -1.0});
  ASSERT_EQ(product.size(), 3u);
  EXPECT_NEAR(product[0], 1.0, 1e-15);
  EXPECT_NEAR(product[1], 0.0, 1e-15);
  EXPECT_NEAR(product[2], -1.0, 1e-15);
}

TEST(PolyMul, EmptyOperands) {
  EXPECT_TRUE(poly_mul(Poly{}, Poly{1.0}).empty());
}

TEST(PolyRoots, QuadraticWithRealRoots) {
  // x^2 - 3x + 2 = (x-1)(x-2).
  auto roots = poly_roots(Poly{2.0, -3.0, 1.0});
  ASSERT_EQ(roots.size(), 2u);
  sort_conjugate_pairs(roots);
  EXPECT_NEAR(roots[0].real(), 1.0, 1e-9);
  EXPECT_NEAR(roots[1].real(), 2.0, 1e-9);
  EXPECT_NEAR(roots[0].imag(), 0.0, 1e-9);
}

TEST(PolyRoots, ComplexConjugatePair) {
  // x^2 + 1 -> +/- i.
  auto roots = poly_roots(Poly{1.0, 0.0, 1.0});
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(std::abs(roots[0]), 1.0, 1e-9);
  EXPECT_NEAR(roots[0].real(), 0.0, 1e-9);
  EXPECT_NEAR(roots[0].imag() + roots[1].imag(), 0.0, 1e-9);
}

TEST(PolyRoots, HighOrderKnownRoots) {
  // prod (x - k/10) for k=1..8.
  std::vector<Complex> expected;
  Poly p{1.0};
  for (int k = 1; k <= 8; ++k) {
    expected.push_back(Complex{k / 10.0, 0.0});
    p = poly_mul(p, Poly{-k / 10.0, 1.0});
  }
  auto roots = poly_roots(p);
  sort_conjugate_pairs(roots);
  ASSERT_EQ(roots.size(), 8u);
  for (int k = 0; k < 8; ++k) {
    EXPECT_NEAR(roots[k].real(), expected[k].real(), 1e-6);
    EXPECT_NEAR(roots[k].imag(), 0.0, 1e-6);
  }
}

TEST(PolyRoots, TrimsLeadingZeros) {
  // 2 - 2x with padded zero high-order coefficients: single root at 1.
  const auto roots = poly_roots(Poly{2.0, -2.0, 0.0, 0.0});
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0].real(), 1.0, 1e-9);
}

TEST(PolyRoots, DegreeZeroHasNoRoots) {
  EXPECT_TRUE(poly_roots(Poly{5.0}).empty());
}

TEST(PolyRoots, RejectsZeroPolynomial) {
  EXPECT_THROW(poly_roots(Poly{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(poly_roots(Poly{}), std::invalid_argument);
}

TEST(PolyFromRoots, RoundTripThroughRoots) {
  const std::vector<Complex> roots{{0.5, 0.25}, {0.5, -0.25}, {-0.75, 0.0}};
  const Poly p = real_poly_from_roots(roots, 2.0);
  ASSERT_EQ(p.size(), 4u);
  // Evaluate at each root: must vanish.
  for (const Complex& r : roots) {
    EXPECT_LT(std::abs(poly_eval(p, r)), 1e-12);
  }
  // Leading coefficient = gain (monic base).
  EXPECT_NEAR(p[3], 2.0, 1e-12);
}

TEST(PolyFromRoots, RejectsNonConjugateSet) {
  const std::vector<Complex> roots{{0.5, 0.25}};  // missing the conjugate
  EXPECT_THROW(real_poly_from_roots(roots, 1.0), std::invalid_argument);
}

TEST(SortConjugatePairs, AdjacentPairs) {
  std::vector<Complex> roots{{0.1, 0.9}, {0.7, 0.0}, {0.1, -0.9}, {-0.3, 0.0}};
  sort_conjugate_pairs(roots);
  // Real roots first (imag 0), then the conjugate pair adjacent.
  EXPECT_NEAR(roots[0].imag(), 0.0, 1e-12);
  EXPECT_NEAR(roots[1].imag(), 0.0, 1e-12);
  EXPECT_NEAR(roots[2].real(), roots[3].real(), 1e-12);
  EXPECT_NEAR(roots[2].imag(), -roots[3].imag(), 1e-12);
}

}  // namespace
}  // namespace metacore::dsp
