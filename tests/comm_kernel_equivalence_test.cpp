// Equivalence tests for the batched decoder kernels: the flat SoA trellis
// view, the quantizer metric table, decode_block vs the per-step virtual
// loop, renormalization tracked in-loop vs the min_element reference scan,
// and golden (pre-kernel) measure_ber values that must stay bit-identical
// for every decoder kind, shard count, and thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "comm/ber.hpp"
#include "comm/channel.hpp"
#include "comm/multires_viterbi.hpp"
#include "comm/viterbi.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

std::vector<double> noisy_stream(const CodeSpec& code, std::size_t bits,
                                 double esn0_db, std::uint64_t seed,
                                 double* sigma) {
  util::Random rng(seed);
  std::vector<int> data(bits);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  ConvolutionalEncoder enc(code);
  BpskModulator mod;
  AwgnChannel channel(esn0_db, 1.0, seed ^ 0xABCD);
  *sigma = channel.noise_sigma();
  return channel.transmit(mod.modulate(enc.encode(data)));
}

DecoderSpec make_spec(DecoderKind kind, int k) {
  DecoderSpec spec;
  spec.code = best_rate_half_code(k);
  spec.traceback_depth = 5 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = std::min(4, spec.code.num_states());
  spec.normalization_terms = 1;
  return spec;
}

// ---------------------------------------------------------------------------
// Flat trellis view vs the array-of-structs predecessor view.

void expect_flat_view_matches(const CodeSpec& code) {
  const Trellis trellis(code);
  const auto states = static_cast<std::uint32_t>(trellis.num_states());
  const auto pred_states = trellis.pred_states();
  const auto pred_symbols = trellis.pred_symbols();
  const auto pred_bits = trellis.pred_bits();
  ASSERT_EQ(pred_states.size(), 2u * states);
  ASSERT_EQ(pred_symbols.size(), 2u * states);
  ASSERT_EQ(pred_bits.size(), 2u * states);
  for (std::uint32_t s = 0; s < states; ++s) {
    const auto& preds = trellis.predecessors(s);
    for (std::size_t b = 0; b < 2; ++b) {
      const std::size_t flat = 2 * s + b;
      EXPECT_EQ(pred_states[flat], preds[b].from_state)
          << "state " << s << " branch " << b;
      EXPECT_EQ(pred_symbols[flat], preds[b].symbols)
          << "state " << s << " branch " << b;
      EXPECT_EQ(static_cast<int>(pred_bits[flat]), preds[b].input_bit)
          << "state " << s << " branch " << b;
    }
  }
}

TEST(FlatTrellis, MatchesPredecessorsOnEveryStateAndBranch) {
  for (int k : {3, 5, 7, 9}) {
    expect_flat_view_matches(best_rate_half_code(k));
  }
  // Rate 1/3: more symbols per step, different pattern-table width.
  expect_flat_view_matches(CodeSpec{5, {025, 033, 037}});
}

// ---------------------------------------------------------------------------
// Quantizer metric table vs the computed branch metric.

TEST(QuantizerMetricTable, MatchesBranchMetricForAllLevels) {
  const QuantizationMethod methods[] = {QuantizationMethod::Hard,
                                        QuantizationMethod::FixedSoft,
                                        QuantizationMethod::AdaptiveSoft};
  for (const auto method : methods) {
    for (int bits = 1; bits <= 8; ++bits) {
      const Quantizer q(method, bits, 1.0, 0.5);
      for (int expected = 0; expected < 2; ++expected) {
        const auto row = q.metric_table(expected);
        ASSERT_EQ(row.size(), static_cast<std::size_t>(q.levels()));
        for (int level = 0; level < q.levels(); ++level) {
          EXPECT_EQ(row[static_cast<std::size_t>(level)],
                    q.branch_metric(level, expected))
              << to_string(method) << " bits=" << bits << " level=" << level
              << " expected=" << expected;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Step API vs block API bit-exactness.

struct KernelCase {
  DecoderKind kind;
  int k;
};

class KernelSweep : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelSweep, StepVsBlockBitExact) {
  const auto [kind, k] = GetParam();
  const DecoderSpec spec = make_spec(kind, k);
  const Trellis trellis(spec.code);
  double sigma = 0.5;
  const auto rx = noisy_stream(spec.code, 4'000, 1.0, 1234 + k, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());

  // Reference: the per-step virtual loop.
  auto step_dec = spec.make_decoder(trellis, 1.0, sigma);
  std::vector<int> step_bits;
  for (std::size_t i = 0; i < rx.size(); i += n) {
    if (auto bit = step_dec->step({rx.data() + i, n})) {
      step_bits.push_back(*bit);
    }
  }
  const auto step_tail = step_dec->flush();

  // One-shot block decode.
  auto block_dec = spec.make_decoder(trellis, 1.0, sigma);
  std::vector<int> block_bits(rx.size() / n);
  block_bits.resize(block_dec->decode_block(rx, block_bits));
  const auto block_tail = block_dec->flush();

  EXPECT_EQ(step_bits, block_bits);
  EXPECT_EQ(step_tail, block_tail);
}

TEST_P(KernelSweep, ChunkBoundariesNeverChangeTheStream) {
  const auto [kind, k] = GetParam();
  const DecoderSpec spec = make_spec(kind, k);
  const Trellis trellis(spec.code);
  double sigma = 0.5;
  const auto rx = noisy_stream(spec.code, 2'000, 1.0, 77 + k, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  const std::size_t total_steps = rx.size() / n;

  auto reference = spec.make_decoder(trellis, 1.0, sigma);
  std::vector<int> ref_bits(total_steps);
  ref_bits.resize(reference->decode_block(rx, ref_bits));

  // Uneven chunk sizes exercise survivor-ring wraparound across block
  // boundaries (including chunks smaller than the traceback window).
  for (const std::size_t chunk_steps : {std::size_t{1}, std::size_t{7},
                                        std::size_t{64}, std::size_t{1021}}) {
    auto chunked = spec.make_decoder(trellis, 1.0, sigma);
    std::vector<int> bits;
    std::vector<int> out(chunk_steps);
    for (std::size_t begin = 0; begin < total_steps; begin += chunk_steps) {
      const std::size_t steps = std::min(chunk_steps, total_steps - begin);
      const std::size_t got =
          chunked->decode_block({rx.data() + begin * n, steps * n},
                                {out.data(), steps});
      bits.insert(bits.end(), out.begin(),
                  out.begin() + static_cast<std::ptrdiff_t>(got));
    }
    EXPECT_EQ(bits, ref_bits) << "chunk=" << chunk_steps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndConstraintLengths, KernelSweep,
    ::testing::Values(KernelCase{DecoderKind::Hard, 3},
                      KernelCase{DecoderKind::Hard, 5},
                      KernelCase{DecoderKind::Hard, 7},
                      KernelCase{DecoderKind::Hard, 9},
                      KernelCase{DecoderKind::Soft, 3},
                      KernelCase{DecoderKind::Soft, 5},
                      KernelCase{DecoderKind::Soft, 7},
                      KernelCase{DecoderKind::Soft, 9},
                      KernelCase{DecoderKind::Multires, 3},
                      KernelCase{DecoderKind::Multires, 5},
                      KernelCase{DecoderKind::Multires, 7},
                      KernelCase{DecoderKind::Multires, 9}));

TEST(DecodeBlock, RejectsBadSpans) {
  const DecoderSpec spec = make_spec(DecoderKind::Soft, 5);
  const Trellis trellis(spec.code);
  auto decoder = spec.make_decoder(trellis, 1.0, 0.5);
  std::vector<double> odd(3, 0.0);   // not a multiple of n = 2
  std::vector<double> rx(8, 0.0);    // 4 trellis steps
  std::vector<int> small(3);         // too small for 4 steps
  std::vector<int> out(4);
  EXPECT_THROW(decoder->decode_block(odd, out), std::invalid_argument);
  EXPECT_THROW(decoder->decode_block(rx, small), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Renormalization: the block kernel tracks the running minimum inside the
// ACS loop; step() keeps the reference min_element scan. Both must agree
// over streams long enough to cross a (lowered) normalization threshold
// many times — and for the integer-metric ViterbiDecoder, renormalizing
// must not change the decoded stream at all.

TEST(Renormalization, InLoopMinimumMatchesMinElementOverLongStream) {
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);
  constexpr std::size_t kBits = 1'100'000;  // > 10^6 trellis steps
  double sigma = 0.5;
  const auto rx = noisy_stream(code, kBits, 0.0, 99, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  // Low threshold so the stream crosses it many times; metrics sit near the
  // threshold (within one step's branch metric) whenever renorm fires.
  constexpr std::int64_t kTestThreshold = std::int64_t{1} << 14;

  ViterbiDecoder step_dec(trellis, 25,
                          Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0,
                                    sigma));
  step_dec.set_normalize_threshold_for_test(kTestThreshold);
  std::vector<int> step_bits;
  step_bits.reserve(kBits);
  for (std::size_t i = 0; i < rx.size(); i += n) {
    if (auto bit = step_dec.step({rx.data() + i, n})) {
      step_bits.push_back(*bit);
    }
  }

  ViterbiDecoder block_dec(trellis, 25,
                           Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0,
                                     sigma));
  block_dec.set_normalize_threshold_for_test(kTestThreshold);
  std::vector<int> block_bits(kBits);
  block_bits.resize(block_dec.decode_block(rx, block_bits));

  // The renorm path genuinely ran, many times, in both drivers.
  EXPECT_GT(step_dec.normalizations(), 50);
  EXPECT_EQ(step_dec.normalizations(), block_dec.normalizations());
  EXPECT_EQ(step_bits, block_bits);
  EXPECT_EQ(step_dec.flush(), block_dec.flush());
}

TEST(Renormalization, IntegerRenormIsDecodedStreamInvariant) {
  // Integer metrics shift exactly, so a decoder renormalizing every few
  // thousand steps must emit the same bits as one that never renormalizes.
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);
  constexpr std::size_t kBits = 200'000;
  double sigma = 0.5;
  const auto rx = noisy_stream(code, kBits, 0.0, 7, &sigma);
  const Quantizer quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0, sigma);

  ViterbiDecoder production(trellis, 25, quantizer);  // never renormalizes here
  std::vector<int> production_bits(kBits);
  production_bits.resize(production.decode_block(rx, production_bits));
  EXPECT_EQ(production.normalizations(), 0);

  ViterbiDecoder renorming(trellis, 25, quantizer);
  renorming.set_normalize_threshold_for_test(std::int64_t{1} << 13);
  std::vector<int> renormed_bits(kBits);
  renormed_bits.resize(renorming.decode_block(rx, renormed_bits));
  EXPECT_GT(renorming.normalizations(), 10);
  EXPECT_EQ(production_bits, renormed_bits);
}

TEST(Renormalization, MultiresStepAndBlockAgreeAcrossRenorms) {
  const DecoderSpec spec = make_spec(DecoderKind::Multires, 5);
  const Trellis trellis(spec.code);
  constexpr std::size_t kBits = 120'000;
  double sigma = 0.5;
  const auto rx = noisy_stream(spec.code, kBits, 0.0, 13, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());

  MultiresConfig config{spec.traceback_depth, spec.low_res_bits,
                        spec.high_res_bits, spec.quantization,
                        spec.num_high_res_paths, spec.normalization_terms};
  MultiresViterbiDecoder step_dec(trellis, config, 1.0, sigma);
  step_dec.set_normalize_threshold_for_test(5e3);
  std::vector<int> step_bits;
  step_bits.reserve(kBits);
  for (std::size_t i = 0; i < rx.size(); i += n) {
    if (auto bit = step_dec.step({rx.data() + i, n})) {
      step_bits.push_back(*bit);
    }
  }

  MultiresViterbiDecoder block_dec(trellis, config, 1.0, sigma);
  block_dec.set_normalize_threshold_for_test(5e3);
  std::vector<int> block_bits(kBits);
  block_bits.resize(block_dec.decode_block(rx, block_bits));

  EXPECT_GT(step_dec.normalizations(), 5);
  EXPECT_EQ(step_dec.normalizations(), block_dec.normalizations());
  EXPECT_EQ(step_bits, block_bits);
}

// ---------------------------------------------------------------------------
// Golden measure_ber values captured from the pre-kernel (per-step,
// allocating) pipeline. The batched allocation-free pipeline must reproduce
// every (successes, trials) pair bit-for-bit, for every decoder kind, shard
// count, and thread count.

struct GoldenBer {
  DecoderKind kind;
  int k;
  int shards;
  std::uint64_t plain_successes;    // max 20k bits, min 10k, 2k errors
  std::uint64_t plain_trials;
  std::uint64_t decided_successes;  // decision_ber = 1e-2 stopping rule
  std::uint64_t decided_trials;
};

constexpr GoldenBer kGolden[] = {
    {DecoderKind::Hard, 3, 1, 80ull, 20000ull, 34ull, 8192ull},
    {DecoderKind::Hard, 3, 8, 63ull, 20000ull, 197ull, 65536ull},
    {DecoderKind::Hard, 5, 1, 38ull, 20000ull, 27ull, 8192ull},
    {DecoderKind::Hard, 5, 8, 31ull, 20000ull, 74ull, 65536ull},
    {DecoderKind::Hard, 7, 1, 35ull, 20000ull, 18ull, 8192ull},
    {DecoderKind::Hard, 7, 8, 12ull, 20000ull, 34ull, 65536ull},
    {DecoderKind::Hard, 9, 1, 3ull, 20000ull, 3ull, 8192ull},
    {DecoderKind::Hard, 9, 8, 0ull, 20000ull, 13ull, 65536ull},
    {DecoderKind::Soft, 3, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Soft, 3, 8, 2ull, 20000ull, 8ull, 65536ull},
    {DecoderKind::Soft, 5, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Soft, 5, 8, 0ull, 20000ull, 0ull, 65536ull},
    {DecoderKind::Soft, 7, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Soft, 7, 8, 0ull, 20000ull, 0ull, 65536ull},
    {DecoderKind::Soft, 9, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Soft, 9, 8, 0ull, 20000ull, 0ull, 65536ull},
    {DecoderKind::Multires, 3, 1, 8ull, 20000ull, 4ull, 8192ull},
    {DecoderKind::Multires, 3, 8, 24ull, 20000ull, 62ull, 65536ull},
    {DecoderKind::Multires, 5, 1, 11ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Multires, 5, 8, 0ull, 20000ull, 4ull, 65536ull},
    {DecoderKind::Multires, 7, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Multires, 7, 8, 3ull, 20000ull, 6ull, 65536ull},
    {DecoderKind::Multires, 9, 1, 11ull, 20000ull, 11ull, 8192ull},
    {DecoderKind::Multires, 9, 8, 0ull, 20000ull, 1ull, 65536ull},
};

/// Restores the configured global pool size on scope exit.
class ThreadGuard {
 public:
  ThreadGuard() = default;
  ~ThreadGuard() {
    exec::ThreadPool::set_global_threads(
        exec::ThreadPool::configured_threads());
  }
};

void expect_golden(const GoldenBer& golden) {
  DecoderSpec spec = make_spec(golden.kind, golden.k);

  BerRunConfig cfg;
  cfg.max_bits = 20'000;
  cfg.min_bits = 10'000;
  cfg.max_errors = 2'000;
  cfg.shards = golden.shards;
  const auto plain = measure_ber(spec, 2.0, cfg);
  EXPECT_EQ(plain.errors.successes, golden.plain_successes)
      << to_string(golden.kind) << " K=" << golden.k
      << " shards=" << golden.shards;
  EXPECT_EQ(plain.errors.trials, golden.plain_trials)
      << to_string(golden.kind) << " K=" << golden.k
      << " shards=" << golden.shards;

  BerRunConfig dcfg;
  dcfg.max_bits = 100'000;
  dcfg.min_bits = 8'192;
  dcfg.max_errors = 1u << 30;
  dcfg.decision_ber = 1e-2;
  dcfg.shards = golden.shards;
  const auto decided = measure_ber(spec, 2.0, dcfg);
  EXPECT_EQ(decided.errors.successes, golden.decided_successes)
      << to_string(golden.kind) << " K=" << golden.k
      << " shards=" << golden.shards;
  EXPECT_EQ(decided.errors.trials, golden.decided_trials)
      << to_string(golden.kind) << " K=" << golden.k
      << " shards=" << golden.shards;
}

TEST(MeasureBerGolden, MatchesPreKernelPipelineSingleThread) {
  ThreadGuard guard;
  exec::ThreadPool::set_global_threads(1);
  for (const auto& golden : kGolden) expect_golden(golden);
}

TEST(MeasureBerGolden, MatchesPreKernelPipelineTwoThreads) {
  ThreadGuard guard;
  exec::ThreadPool::set_global_threads(2);
  for (const auto& golden : kGolden) expect_golden(golden);
}

TEST(MeasureBerGolden, MatchesPreKernelPipelineEightThreads) {
  ThreadGuard guard;
  exec::ThreadPool::set_global_threads(8);
  for (const auto& golden : kGolden) expect_golden(golden);
}

}  // namespace
}  // namespace metacore::comm
