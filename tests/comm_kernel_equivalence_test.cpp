// Equivalence tests for the batched decoder kernels: the flat SoA trellis
// view, the quantizer metric table, decode_block vs the per-step virtual
// loop, renormalization tracked in-loop vs the min_element reference scan,
// and golden (pre-kernel) measure_ber values that must stay bit-identical
// for every decoder kind, shard count, and thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "comm/ber.hpp"
#include "comm/channel.hpp"
#include "comm/multires_viterbi.hpp"
#include "comm/simd/acs_kernel.hpp"
#include "comm/viterbi.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

std::vector<double> noisy_stream(const CodeSpec& code, std::size_t bits,
                                 double esn0_db, std::uint64_t seed,
                                 double* sigma) {
  util::Random rng(seed);
  std::vector<int> data(bits);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  ConvolutionalEncoder enc(code);
  BpskModulator mod;
  AwgnChannel channel(esn0_db, 1.0, seed ^ 0xABCD);
  *sigma = channel.noise_sigma();
  return channel.transmit(mod.modulate(enc.encode(data)));
}

DecoderSpec make_spec(DecoderKind kind, int k) {
  DecoderSpec spec;
  spec.code = best_rate_half_code(k);
  spec.traceback_depth = 5 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = std::min(4, spec.code.num_states());
  spec.normalization_terms = 1;
  return spec;
}

// ---------------------------------------------------------------------------
// Flat trellis view vs the array-of-structs predecessor view.

void expect_flat_view_matches(const CodeSpec& code) {
  const Trellis trellis(code);
  const auto states = static_cast<std::uint32_t>(trellis.num_states());
  const auto pred_states = trellis.pred_states();
  const auto pred_symbols = trellis.pred_symbols();
  const auto pred_bits = trellis.pred_bits();
  ASSERT_EQ(pred_states.size(), 2u * states);
  ASSERT_EQ(pred_symbols.size(), 2u * states);
  ASSERT_EQ(pred_bits.size(), 2u * states);
  for (std::uint32_t s = 0; s < states; ++s) {
    const auto& preds = trellis.predecessors(s);
    for (std::size_t b = 0; b < 2; ++b) {
      const std::size_t flat = 2 * s + b;
      EXPECT_EQ(pred_states[flat], preds[b].from_state)
          << "state " << s << " branch " << b;
      EXPECT_EQ(pred_symbols[flat], preds[b].symbols)
          << "state " << s << " branch " << b;
      EXPECT_EQ(static_cast<int>(pred_bits[flat]), preds[b].input_bit)
          << "state " << s << " branch " << b;
    }
  }
}

TEST(FlatTrellis, MatchesPredecessorsOnEveryStateAndBranch) {
  for (int k : {3, 5, 7, 9}) {
    expect_flat_view_matches(best_rate_half_code(k));
  }
  // Rate 1/3: more symbols per step, different pattern-table width.
  expect_flat_view_matches(CodeSpec{5, {025, 033, 037}});
}

// ---------------------------------------------------------------------------
// Quantizer metric table vs the computed branch metric.

TEST(QuantizerMetricTable, MatchesBranchMetricForAllLevels) {
  const QuantizationMethod methods[] = {QuantizationMethod::Hard,
                                        QuantizationMethod::FixedSoft,
                                        QuantizationMethod::AdaptiveSoft};
  for (const auto method : methods) {
    for (int bits = 1; bits <= 8; ++bits) {
      const Quantizer q(method, bits, 1.0, 0.5);
      for (int expected = 0; expected < 2; ++expected) {
        const auto row = q.metric_table(expected);
        ASSERT_EQ(row.size(), static_cast<std::size_t>(q.levels()));
        for (int level = 0; level < q.levels(); ++level) {
          EXPECT_EQ(row[static_cast<std::size_t>(level)],
                    q.branch_metric(level, expected))
              << to_string(method) << " bits=" << bits << " level=" << level
              << " expected=" << expected;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Step API vs block API bit-exactness.

struct KernelCase {
  DecoderKind kind;
  int k;
};

class KernelSweep : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelSweep, StepVsBlockBitExact) {
  const auto [kind, k] = GetParam();
  const DecoderSpec spec = make_spec(kind, k);
  const Trellis trellis(spec.code);
  double sigma = 0.5;
  const auto rx = noisy_stream(spec.code, 4'000, 1.0, 1234 + k, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());

  // Reference: the per-step virtual loop.
  auto step_dec = spec.make_decoder(trellis, 1.0, sigma);
  std::vector<int> step_bits;
  for (std::size_t i = 0; i < rx.size(); i += n) {
    if (auto bit = step_dec->step({rx.data() + i, n})) {
      step_bits.push_back(*bit);
    }
  }
  const auto step_tail = step_dec->flush();

  // One-shot block decode.
  auto block_dec = spec.make_decoder(trellis, 1.0, sigma);
  std::vector<int> block_bits(rx.size() / n);
  block_bits.resize(block_dec->decode_block(rx, block_bits));
  const auto block_tail = block_dec->flush();

  EXPECT_EQ(step_bits, block_bits);
  EXPECT_EQ(step_tail, block_tail);
}

TEST_P(KernelSweep, ChunkBoundariesNeverChangeTheStream) {
  const auto [kind, k] = GetParam();
  const DecoderSpec spec = make_spec(kind, k);
  const Trellis trellis(spec.code);
  double sigma = 0.5;
  const auto rx = noisy_stream(spec.code, 2'000, 1.0, 77 + k, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  const std::size_t total_steps = rx.size() / n;

  auto reference = spec.make_decoder(trellis, 1.0, sigma);
  std::vector<int> ref_bits(total_steps);
  ref_bits.resize(reference->decode_block(rx, ref_bits));

  // Uneven chunk sizes exercise survivor-ring wraparound across block
  // boundaries (including chunks smaller than the traceback window).
  for (const std::size_t chunk_steps : {std::size_t{1}, std::size_t{7},
                                        std::size_t{64}, std::size_t{1021}}) {
    auto chunked = spec.make_decoder(trellis, 1.0, sigma);
    std::vector<int> bits;
    std::vector<int> out(chunk_steps);
    for (std::size_t begin = 0; begin < total_steps; begin += chunk_steps) {
      const std::size_t steps = std::min(chunk_steps, total_steps - begin);
      const std::size_t got =
          chunked->decode_block({rx.data() + begin * n, steps * n},
                                {out.data(), steps});
      bits.insert(bits.end(), out.begin(),
                  out.begin() + static_cast<std::ptrdiff_t>(got));
    }
    EXPECT_EQ(bits, ref_bits) << "chunk=" << chunk_steps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndConstraintLengths, KernelSweep,
    ::testing::Values(KernelCase{DecoderKind::Hard, 3},
                      KernelCase{DecoderKind::Hard, 5},
                      KernelCase{DecoderKind::Hard, 7},
                      KernelCase{DecoderKind::Hard, 9},
                      KernelCase{DecoderKind::Soft, 3},
                      KernelCase{DecoderKind::Soft, 5},
                      KernelCase{DecoderKind::Soft, 7},
                      KernelCase{DecoderKind::Soft, 9},
                      KernelCase{DecoderKind::Multires, 3},
                      KernelCase{DecoderKind::Multires, 5},
                      KernelCase{DecoderKind::Multires, 7},
                      KernelCase{DecoderKind::Multires, 9}));

TEST(DecodeBlock, RejectsBadSpans) {
  const DecoderSpec spec = make_spec(DecoderKind::Soft, 5);
  const Trellis trellis(spec.code);
  auto decoder = spec.make_decoder(trellis, 1.0, 0.5);
  std::vector<double> odd(3, 0.0);   // not a multiple of n = 2
  std::vector<double> rx(8, 0.0);    // 4 trellis steps
  std::vector<int> small(3);         // too small for 4 steps
  std::vector<int> out(4);
  EXPECT_THROW(decoder->decode_block(odd, out), std::invalid_argument);
  EXPECT_THROW(decoder->decode_block(rx, small), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Renormalization: the block kernel tracks the running minimum inside the
// ACS loop; step() keeps the reference min_element scan. Both must agree
// over streams long enough to cross a (lowered) normalization threshold
// many times — and for the integer-metric ViterbiDecoder, renormalizing
// must not change the decoded stream at all.

TEST(Renormalization, InLoopMinimumMatchesMinElementOverLongStream) {
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);
  constexpr std::size_t kBits = 1'100'000;  // > 10^6 trellis steps
  double sigma = 0.5;
  const auto rx = noisy_stream(code, kBits, 0.0, 99, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  // Low threshold so the stream crosses it many times; metrics sit near the
  // threshold (within one step's branch metric) whenever renorm fires.
  constexpr std::int64_t kTestThreshold = std::int64_t{1} << 14;

  ViterbiDecoder step_dec(trellis, 25,
                          Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0,
                                    sigma));
  step_dec.set_normalize_threshold_for_test(kTestThreshold);
  std::vector<int> step_bits;
  step_bits.reserve(kBits);
  for (std::size_t i = 0; i < rx.size(); i += n) {
    if (auto bit = step_dec.step({rx.data() + i, n})) {
      step_bits.push_back(*bit);
    }
  }

  ViterbiDecoder block_dec(trellis, 25,
                           Quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0,
                                     sigma));
  block_dec.set_normalize_threshold_for_test(kTestThreshold);
  std::vector<int> block_bits(kBits);
  block_bits.resize(block_dec.decode_block(rx, block_bits));

  // The renorm path genuinely ran, many times, in both drivers.
  EXPECT_GT(step_dec.normalizations(), 50);
  EXPECT_EQ(step_dec.normalizations(), block_dec.normalizations());
  EXPECT_EQ(step_bits, block_bits);
  EXPECT_EQ(step_dec.flush(), block_dec.flush());
}

TEST(Renormalization, IntegerRenormIsDecodedStreamInvariant) {
  // Integer metrics shift exactly, so a decoder renormalizing every few
  // thousand steps must emit the same bits as one that never renormalizes.
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);
  constexpr std::size_t kBits = 200'000;
  double sigma = 0.5;
  const auto rx = noisy_stream(code, kBits, 0.0, 7, &sigma);
  const Quantizer quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0, sigma);

  ViterbiDecoder production(trellis, 25, quantizer);  // never renormalizes here
  std::vector<int> production_bits(kBits);
  production_bits.resize(production.decode_block(rx, production_bits));
  EXPECT_EQ(production.normalizations(), 0);

  ViterbiDecoder renorming(trellis, 25, quantizer);
  renorming.set_normalize_threshold_for_test(std::int64_t{1} << 13);
  std::vector<int> renormed_bits(kBits);
  renormed_bits.resize(renorming.decode_block(rx, renormed_bits));
  EXPECT_GT(renorming.normalizations(), 10);
  EXPECT_EQ(production_bits, renormed_bits);
}

TEST(Renormalization, MultiresStepAndBlockAgreeAcrossRenorms) {
  const DecoderSpec spec = make_spec(DecoderKind::Multires, 5);
  const Trellis trellis(spec.code);
  constexpr std::size_t kBits = 120'000;
  double sigma = 0.5;
  const auto rx = noisy_stream(spec.code, kBits, 0.0, 13, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());

  MultiresConfig config{spec.traceback_depth, spec.low_res_bits,
                        spec.high_res_bits, spec.quantization,
                        spec.num_high_res_paths, spec.normalization_terms};
  MultiresViterbiDecoder step_dec(trellis, config, 1.0, sigma);
  step_dec.set_normalize_threshold_for_test(5e3);
  std::vector<int> step_bits;
  step_bits.reserve(kBits);
  for (std::size_t i = 0; i < rx.size(); i += n) {
    if (auto bit = step_dec.step({rx.data() + i, n})) {
      step_bits.push_back(*bit);
    }
  }

  MultiresViterbiDecoder block_dec(trellis, config, 1.0, sigma);
  block_dec.set_normalize_threshold_for_test(5e3);
  std::vector<int> block_bits(kBits);
  block_bits.resize(block_dec.decode_block(rx, block_bits));

  EXPECT_GT(step_dec.normalizations(), 5);
  EXPECT_EQ(step_dec.normalizations(), block_dec.normalizations());
  EXPECT_EQ(step_bits, block_bits);
}

// ---------------------------------------------------------------------------
// Golden measure_ber values captured from the pre-kernel (per-step,
// allocating) pipeline. The batched allocation-free pipeline must reproduce
// every (successes, trials) pair bit-for-bit, for every decoder kind, shard
// count, and thread count.

struct GoldenBer {
  DecoderKind kind;
  int k;
  int shards;
  std::uint64_t plain_successes;    // max 20k bits, min 10k, 2k errors
  std::uint64_t plain_trials;
  std::uint64_t decided_successes;  // decision_ber = 1e-2 stopping rule
  std::uint64_t decided_trials;
};

constexpr GoldenBer kGolden[] = {
    {DecoderKind::Hard, 3, 1, 80ull, 20000ull, 34ull, 8192ull},
    {DecoderKind::Hard, 3, 8, 63ull, 20000ull, 197ull, 65536ull},
    {DecoderKind::Hard, 5, 1, 38ull, 20000ull, 27ull, 8192ull},
    {DecoderKind::Hard, 5, 8, 31ull, 20000ull, 74ull, 65536ull},
    {DecoderKind::Hard, 7, 1, 35ull, 20000ull, 18ull, 8192ull},
    {DecoderKind::Hard, 7, 8, 12ull, 20000ull, 34ull, 65536ull},
    {DecoderKind::Hard, 9, 1, 3ull, 20000ull, 3ull, 8192ull},
    {DecoderKind::Hard, 9, 8, 0ull, 20000ull, 13ull, 65536ull},
    {DecoderKind::Soft, 3, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Soft, 3, 8, 2ull, 20000ull, 8ull, 65536ull},
    {DecoderKind::Soft, 5, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Soft, 5, 8, 0ull, 20000ull, 0ull, 65536ull},
    {DecoderKind::Soft, 7, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Soft, 7, 8, 0ull, 20000ull, 0ull, 65536ull},
    {DecoderKind::Soft, 9, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Soft, 9, 8, 0ull, 20000ull, 0ull, 65536ull},
    {DecoderKind::Multires, 3, 1, 8ull, 20000ull, 4ull, 8192ull},
    {DecoderKind::Multires, 3, 8, 24ull, 20000ull, 62ull, 65536ull},
    {DecoderKind::Multires, 5, 1, 11ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Multires, 5, 8, 0ull, 20000ull, 4ull, 65536ull},
    {DecoderKind::Multires, 7, 1, 0ull, 20000ull, 0ull, 8192ull},
    {DecoderKind::Multires, 7, 8, 3ull, 20000ull, 6ull, 65536ull},
    {DecoderKind::Multires, 9, 1, 11ull, 20000ull, 11ull, 8192ull},
    {DecoderKind::Multires, 9, 8, 0ull, 20000ull, 1ull, 65536ull},
};

/// Restores the configured global pool size on scope exit.
class ThreadGuard {
 public:
  ThreadGuard() = default;
  ~ThreadGuard() {
    exec::ThreadPool::set_global_threads(
        exec::ThreadPool::configured_threads());
  }
};

void expect_golden(const GoldenBer& golden) {
  DecoderSpec spec = make_spec(golden.kind, golden.k);

  BerRunConfig cfg;
  cfg.max_bits = 20'000;
  cfg.min_bits = 10'000;
  cfg.max_errors = 2'000;
  cfg.shards = golden.shards;
  const auto plain = measure_ber(spec, 2.0, cfg);
  EXPECT_EQ(plain.errors.successes, golden.plain_successes)
      << to_string(golden.kind) << " K=" << golden.k
      << " shards=" << golden.shards;
  EXPECT_EQ(plain.errors.trials, golden.plain_trials)
      << to_string(golden.kind) << " K=" << golden.k
      << " shards=" << golden.shards;

  BerRunConfig dcfg;
  dcfg.max_bits = 100'000;
  dcfg.min_bits = 8'192;
  dcfg.max_errors = 1u << 30;
  dcfg.decision_ber = 1e-2;
  dcfg.shards = golden.shards;
  const auto decided = measure_ber(spec, 2.0, dcfg);
  EXPECT_EQ(decided.errors.successes, golden.decided_successes)
      << to_string(golden.kind) << " K=" << golden.k
      << " shards=" << golden.shards;
  EXPECT_EQ(decided.errors.trials, golden.decided_trials)
      << to_string(golden.kind) << " K=" << golden.k
      << " shards=" << golden.shards;
}

TEST(MeasureBerGolden, MatchesPreKernelPipelineSingleThread) {
  ThreadGuard guard;
  exec::ThreadPool::set_global_threads(1);
  for (const auto& golden : kGolden) expect_golden(golden);
}

TEST(MeasureBerGolden, MatchesPreKernelPipelineTwoThreads) {
  ThreadGuard guard;
  exec::ThreadPool::set_global_threads(2);
  for (const auto& golden : kGolden) expect_golden(golden);
}

TEST(MeasureBerGolden, MatchesPreKernelPipelineEightThreads) {
  ThreadGuard guard;
  exec::ThreadPool::set_global_threads(8);
  for (const auto& golden : kGolden) expect_golden(golden);
}

// ---------------------------------------------------------------------------
// ISA dispatch matrix: every compiled-and-available kernel tier must be
// bit-identical to the scalar reference — decoded streams, flush tails,
// renormalization counts, survivor-window bytes, accumulated errors, and
// golden measure_ber values — for every decoder kind, constraint length,
// and chunk size.

/// Restores the dispatched ISA on scope exit.
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::dispatched_isa()) {}
  ~IsaGuard() { simd::force_isa(saved_); }

 private:
  simd::Isa saved_;
};

std::vector<simd::Isa> available_isas() {
  std::vector<simd::Isa> isas;
  for (const auto isa : {simd::Isa::Scalar, simd::Isa::Sse4, simd::Isa::Avx2,
                         simd::Isa::Avx512}) {
    if (simd::isa_available(isa)) isas.push_back(isa);
  }
  return isas;
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndForceRoundTrips) {
  EXPECT_TRUE(simd::isa_compiled(simd::Isa::Scalar));
  EXPECT_TRUE(simd::isa_available(simd::Isa::Scalar));
  IsaGuard guard;
  for (const auto isa : available_isas()) {
    simd::force_isa(isa);
    EXPECT_EQ(simd::dispatched_isa(), isa);
    EXPECT_NE(simd::viterbi_acs(), nullptr);
    EXPECT_NE(simd::multires_acs(), nullptr);
    EXPECT_NE(simd::quantize_block(), nullptr);
    // The per-tier accessors agree with the dispatched ones.
    EXPECT_EQ(simd::viterbi_acs(), simd::viterbi_acs(isa));
    EXPECT_EQ(simd::multires_acs(), simd::multires_acs(isa));
    EXPECT_EQ(simd::quantize_block(), simd::quantize_block(isa));
  }
}

TEST(SimdDispatch, UnavailableTiersThrow) {
  IsaGuard guard;
  for (const auto isa :
       {simd::Isa::Sse4, simd::Isa::Avx2, simd::Isa::Avx512}) {
    if (simd::isa_available(isa)) continue;
    EXPECT_THROW(simd::force_isa(isa), std::runtime_error);
    EXPECT_THROW(simd::viterbi_acs(isa), std::runtime_error);
  }
}

TEST(SimdQuantize, BlockMatchesPerSampleOnEveryTier) {
  IsaGuard guard;
  const QuantizationMethod methods[] = {QuantizationMethod::Hard,
                                        QuantizationMethod::FixedSoft,
                                        QuantizationMethod::AdaptiveSoft};
  util::Random rng(4242);
  for (const auto method : methods) {
    for (int bits : {1, 3, 8}) {
      const Quantizer q(method, bits, 1.0, 0.5);
      // Random samples plus saturation and threshold-straddling edges; odd
      // count exercises every kernel's scalar tail.
      std::vector<double> rx;
      for (int i = 0; i < 1001; ++i) rx.push_back(rng.normal(0.0, 2.0));
      rx.insert(rx.end(), {-1e9, 1e9, -1.0, 1.0, 0.0, -1e-9, 1e-9});
      std::vector<int> expected(rx.size());
      for (std::size_t i = 0; i < rx.size(); ++i) {
        expected[i] = q.quantize(rx[i]);
      }
      for (const auto isa : available_isas()) {
        simd::force_isa(isa);
        std::vector<int> out(rx.size(), -1);
        q.quantize_block(rx, out);
        EXPECT_EQ(out, expected)
            << to_string(method) << " bits=" << bits << " isa="
            << simd::to_string(isa);
      }
    }
  }
}

/// Everything observable from one decode run, compared across ISA tiers.
struct DecodeTrace {
  std::vector<int> bits;
  std::vector<int> tail;
  std::int64_t normalizations = 0;
  std::vector<std::uint8_t> survivors;
  std::vector<double> accumulated;
};

/// Decodes `rx` under the currently forced ISA with mixed chunk sizes (one
/// big block, then 7- and 1021-step chunks) so kernel entry points are hit
/// with every alignment and tail shape.
DecodeTrace run_decode_trace(const DecoderSpec& spec, const Trellis& trellis,
                             std::span<const double> rx, double sigma) {
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  const std::size_t total_steps = rx.size() / n;
  DecodeTrace trace;
  auto decode_chunks = [&](auto& decoder) {
    std::size_t begin = 0;
    std::size_t which = 0;
    const std::size_t chunk_sizes[] = {total_steps / 2, 7, 1021};
    std::vector<int> out(total_steps);
    while (begin < total_steps) {
      const std::size_t chunk = std::min(
          std::max<std::size_t>(chunk_sizes[which % 3], 1), total_steps - begin);
      const std::size_t got = decoder.decode_block(
          {rx.data() + begin * n, chunk * n}, {out.data(), chunk});
      trace.bits.insert(trace.bits.end(), out.begin(),
                        out.begin() + static_cast<std::ptrdiff_t>(got));
      begin += chunk;
      ++which;
    }
    trace.tail = decoder.flush();
    trace.normalizations = decoder.normalizations();
    const auto window = decoder.survivor_window_for_test();
    trace.survivors.assign(window.begin(), window.end());
    for (const auto a : decoder.accumulated_errors()) {
      trace.accumulated.push_back(static_cast<double>(a));
    }
  };
  if (spec.kind == DecoderKind::Multires) {
    MultiresConfig config{spec.traceback_depth, spec.low_res_bits,
                          spec.high_res_bits, spec.quantization,
                          spec.num_high_res_paths, spec.normalization_terms};
    MultiresViterbiDecoder decoder(trellis, config, 1.0, sigma);
    decoder.set_normalize_threshold_for_test(5e3);
    decode_chunks(decoder);
  } else {
    const Quantizer quantizer(
        spec.kind == DecoderKind::Hard ? QuantizationMethod::Hard
                                       : spec.quantization,
        spec.kind == DecoderKind::Hard ? 1 : spec.high_res_bits, 1.0, sigma);
    // Low enough that even the slow-growing 1-bit hard metrics renormalize
    // many times over the test stream.
    ViterbiDecoder decoder(trellis, spec.traceback_depth, quantizer);
    decoder.set_normalize_threshold_for_test(std::int64_t{1} << 8);
    decode_chunks(decoder);
  }
  return trace;
}

class IsaMatrix : public ::testing::TestWithParam<KernelCase> {};

TEST_P(IsaMatrix, EveryTierBitIdenticalToScalar) {
  const auto [kind, k] = GetParam();
  const DecoderSpec spec = make_spec(kind, k);
  const Trellis trellis(spec.code);
  double sigma = 0.5;
  // Long enough that the lowered renormalization thresholds fire many times.
  const auto rx = noisy_stream(spec.code, 60'000, 0.5, 4321 + k, &sigma);

  IsaGuard guard;
  simd::force_isa(simd::Isa::Scalar);
  const DecodeTrace reference = run_decode_trace(spec, trellis, rx, sigma);
  EXPECT_GT(reference.normalizations, 0);

  for (const auto isa : available_isas()) {
    if (isa == simd::Isa::Scalar) continue;
    simd::force_isa(isa);
    const DecodeTrace trace = run_decode_trace(spec, trellis, rx, sigma);
    const std::string label = simd::to_string(isa);
    EXPECT_EQ(trace.bits, reference.bits) << label;
    EXPECT_EQ(trace.tail, reference.tail) << label;
    EXPECT_EQ(trace.normalizations, reference.normalizations) << label;
    EXPECT_EQ(trace.survivors, reference.survivors) << label;
    EXPECT_EQ(trace.accumulated, reference.accumulated) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndConstraintLengths, IsaMatrix,
    ::testing::Values(KernelCase{DecoderKind::Hard, 3},
                      KernelCase{DecoderKind::Hard, 5},
                      KernelCase{DecoderKind::Hard, 7},
                      KernelCase{DecoderKind::Hard, 9},
                      KernelCase{DecoderKind::Soft, 3},
                      KernelCase{DecoderKind::Soft, 5},
                      KernelCase{DecoderKind::Soft, 7},
                      KernelCase{DecoderKind::Soft, 9},
                      KernelCase{DecoderKind::Multires, 3},
                      KernelCase{DecoderKind::Multires, 5},
                      KernelCase{DecoderKind::Multires, 7},
                      KernelCase{DecoderKind::Multires, 9}));

TEST(IsaMatrix, GoldenBerIdenticalOnEveryTier) {
  ThreadGuard thread_guard;
  exec::ThreadPool::set_global_threads(2);
  IsaGuard isa_guard;
  for (const auto isa : available_isas()) {
    simd::force_isa(isa);
    for (const auto& golden : kGolden) expect_golden(golden);
  }
}

// ---------------------------------------------------------------------------
// int32 path-metric overflow bound (the class comment of ViterbiDecoder):
// with renormalization at threshold T and per-step branch-metric bound
// B = n * (2^bits - 1), every post-merge metric stays below T + (K+1)*B.
// A lowered threshold over a long stream crosses the renorm path thousands
// of times; the bound must hold after every chunk on every ISA tier.

TEST(Int32Overflow, LoweredThresholdLongStreamStaysWithinBound) {
  const int k = 7;
  const CodeSpec code = best_rate_half_code(k);
  const Trellis trellis(code);
  constexpr std::size_t kBits = 300'000;
  double sigma = 0.5;
  const auto rx = noisy_stream(code, kBits, 0.0, 31, &sigma);
  const auto n = static_cast<std::size_t>(trellis.symbols_per_step());
  const std::size_t total_steps = rx.size() / n;

  constexpr std::int64_t kThreshold = std::int64_t{1} << 14;
  const Quantizer quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0, sigma);
  const std::int64_t per_step_bound =
      static_cast<std::int64_t>(n) * quantizer.max_level();
  const std::int64_t metric_bound = kThreshold + (k + 1) * per_step_bound;

  IsaGuard guard;
  std::vector<int> reference_bits;
  std::int64_t reference_norms = 0;
  for (const auto isa : available_isas()) {
    simd::force_isa(isa);
    ViterbiDecoder decoder(trellis, 5 * k, quantizer);
    decoder.set_normalize_threshold_for_test(kThreshold);
    std::vector<int> bits;
    std::vector<int> out(1021);
    for (std::size_t begin = 0; begin < total_steps; begin += 1021) {
      const std::size_t steps = std::min<std::size_t>(1021, total_steps - begin);
      const std::size_t got = decoder.decode_block(
          {rx.data() + begin * n, steps * n}, {out.data(), steps});
      bits.insert(bits.end(), out.begin(),
                  out.begin() + static_cast<std::ptrdiff_t>(got));
      // The overflow-bound invariant, checked at every chunk boundary.
      for (const auto metric : decoder.accumulated_errors()) {
        ASSERT_LE(metric, metric_bound) << simd::to_string(isa);
        ASSERT_GE(metric, 0) << simd::to_string(isa);
      }
    }
    EXPECT_GT(decoder.normalizations(), 10) << simd::to_string(isa);
    if (isa == simd::Isa::Scalar) {
      reference_bits = bits;
      reference_norms = decoder.normalizations();
    } else {
      EXPECT_EQ(bits, reference_bits) << simd::to_string(isa);
      EXPECT_EQ(decoder.normalizations(), reference_norms)
          << simd::to_string(isa);
    }
  }
}

}  // namespace
}  // namespace metacore::comm
