// The crash matrix: deterministic fail-point injection over the
// persistence layer (robust/journal.hpp, robust/failpoint.hpp). These
// tests kill the evaluation-store journal after every byte of every
// record write and at each checkpoint/compaction boundary, then reopen as
// a restarted process would and assert bit-identical recovery: the file
// equals what a clean run over the surviving prefix would have produced,
// completed sessions converge to byte-identical journals, and no
// completed record is ever lost. Plus the fault half: injected transient
// I/O errors exercise retry-with-backoff; a dead device flips the store
// into degraded read-only mode without failing the search above it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "robust/checkpoint.hpp"
#include "robust/failpoint.hpp"
#include "robust/journal.hpp"
#include "search/multires_search.hpp"
#include "serve/store.hpp"
#include "util/crc32c.hpp"

namespace metacore::robust {
namespace {

#ifdef METACORE_FAILPOINTS

std::string temp_path(const char* name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::trunc | std::ios::binary) << bytes;
}

/// Scoped disarm-everything: each test leaves the process-global registry
/// clean even on assertion failure.
struct FailPointGuard {
  FailPointGuard() { FailPoints::instance().reset(); }
  ~FailPointGuard() { FailPoints::instance().reset(); }
};

search::Evaluation eval_with_cost(double cost) {
  search::Evaluation eval;
  eval.feasible = true;
  eval.confidence_weight = 7.0;
  eval.metrics["cost"] = cost;
  return eval;
}

/// The session the store crash matrix replays: three records under one
/// fingerprint.
constexpr int kSessionRecords = 3;

void record_nth(serve::EvaluationStore& store, int n) {
  store.record("fp", {n}, 0, eval_with_cost(static_cast<double>(n) + 0.5));
}

/// Clean-run reference: the exact journal bytes a session that wrote the
/// first `k` records produces.
std::string reference_journal(const std::string& dir_tag, int k) {
  const std::string path =
      temp_path(("crash_ref_" + dir_tag + "_" + std::to_string(k)).c_str());
  {
    serve::EvaluationStore store(path);
    for (int n = 1; n <= k; ++n) record_nth(store, n);
  }
  const std::string bytes = read_file(path);
  std::remove(path.c_str());
  return bytes;
}

// --- Unit coverage for the pieces the matrix is built from.

TEST(Crc32c, MatchesCheckValue) {
  // The CRC32C (Castagnoli) check value: crc of "123456789" (RFC 3720).
  EXPECT_EQ(util::crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(util::crc32c(""), 0u);
  // Any single flipped bit changes the checksum.
  std::string probe = "123456789";
  for (std::size_t i = 0; i < probe.size(); ++i) {
    probe[i] ^= 0x01;
    EXPECT_NE(util::crc32c(probe), 0xE3069283u) << i;
    probe[i] ^= 0x01;
  }
}

TEST(Durability, ParsesEveryPolicy) {
  EXPECT_EQ(DurabilityConfig::parse("none").policy, DurabilityPolicy::None);
  EXPECT_EQ(DurabilityConfig::parse("flush").policy, DurabilityPolicy::Flush);
  EXPECT_EQ(DurabilityConfig::parse("fsync-on-close").policy,
            DurabilityPolicy::FsyncOnClose);
  const DurabilityConfig every = DurabilityConfig::parse("fsync-every-16");
  EXPECT_EQ(every.policy, DurabilityPolicy::FsyncEveryN);
  EXPECT_EQ(every.fsync_interval, 16u);
  EXPECT_EQ(every.to_string(), "fsync-every-16");
  EXPECT_THROW(DurabilityConfig::parse("fsync"), std::invalid_argument);
  EXPECT_THROW(DurabilityConfig::parse("fsync-every-0"), std::invalid_argument);
  EXPECT_THROW(DurabilityConfig::parse("fsync-every-x"), std::invalid_argument);
  EXPECT_THROW(DurabilityConfig::parse(""), std::invalid_argument);
}

TEST(FailPointSpecs, ParsesEnvSyntax) {
  FailPointGuard guard;
  auto& fps = FailPoints::instance();
  fps.arm_from_string("a.write:crash@3+17;b.sync:io@2*5;c.rename:crash@1");
  // a.write: hits 1-2 pass, hit 3 crashes with 17 bytes landed.
  EXPECT_FALSE(fps.on_hit("a.write").crash);
  EXPECT_FALSE(fps.on_hit("a.write").crash);
  const FailPointResult third = fps.on_hit("a.write");
  EXPECT_TRUE(third.crash);
  EXPECT_EQ(third.partial_bytes, 17u);
  // b.sync: hit 1 passes, hits 2-6 fail, hit 7 passes.
  EXPECT_FALSE(fps.on_hit("b.sync").io_error);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fps.on_hit("b.sync").io_error);
  EXPECT_FALSE(fps.on_hit("b.sync").io_error);
  // c.rename: immediate crash, whole write.
  const FailPointResult c = fps.on_hit("c.rename");
  EXPECT_TRUE(c.crash);
  EXPECT_EQ(c.partial_bytes, SIZE_MAX);
  EXPECT_EQ(fps.hits("a.write"), 3u);

  EXPECT_THROW(fps.arm_from_string("noaction"), std::invalid_argument);
  EXPECT_THROW(fps.arm_from_string("x:explode@1"), std::invalid_argument);
  EXPECT_THROW(fps.arm_from_string("x:crash@"), std::invalid_argument);
  EXPECT_THROW(fps.arm_from_string("x:crash@0"), std::invalid_argument);
  EXPECT_THROW(fps.arm_from_string("x:io@1*0"), std::invalid_argument);
}

TEST(Journal, FrameRoundTripAllowsNewlinesInPayloads) {
  const std::string text =
      journal_header_line(JournalHeader{"test-kind", 3}) +
      frame_record("first\nrecord\nwith\nnewlines") + frame_record("") +
      frame_record("third");
  ASSERT_TRUE(looks_like_journal(text));
  const JournalReadResult r = read_journal_text(text, "test");
  EXPECT_EQ(r.header.kind, "test-kind");
  EXPECT_EQ(r.header.kind_version, 3);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0], "first\nrecord\nwith\nnewlines");
  EXPECT_EQ(r.records[1], "");
  EXPECT_EQ(r.records[2], "third");
  EXPECT_EQ(r.skipped_records, 0u);
  EXPECT_EQ(r.recovered_tail_bytes, 0u);
  EXPECT_EQ(r.good_end, text.size());
}

// --- The crash matrix proper.

// Kill the store journal after every byte of every record write. For each
// record n (1-based) and each byte count b in [0, frame_size(n)]:
//  * arm store.journal.append to crash at hit n after b bytes,
//  * run the session, expect the simulated process death,
//  * reopen as a restarted process: recovery must keep exactly the
//    records whose frames completed, and the recovered file must be
//    byte-identical to a clean session that wrote only those records,
//  * finish the session: the final journal must be byte-identical to an
//    uninterrupted run, with no completed record ever re-journaled.
TEST(CrashMatrix, StoreJournalSurvivesEveryByteBoundary) {
  FailPointGuard guard;
  // Frame sizes, from a clean run: store payloads never contain raw
  // newlines, so frames are exactly the newline-terminated lines after
  // the header.
  const std::string golden = reference_journal("golden", kSessionRecords);
  std::vector<std::size_t> frame_sizes;
  for (std::size_t at = golden.find('\n') + 1; at < golden.size();) {
    const std::size_t nl = golden.find('\n', at);
    ASSERT_NE(nl, std::string::npos);
    frame_sizes.push_back(nl - at + 1);
    at = nl + 1;
  }
  ASSERT_EQ(frame_sizes.size(), static_cast<std::size_t>(kSessionRecords));

  std::vector<std::string> references;  // clean-run bytes for k = 0..N
  for (int k = 0; k <= kSessionRecords; ++k) {
    references.push_back(reference_journal("k", k));
  }

  int points_enumerated = 0;
  for (int n = 1; n <= kSessionRecords; ++n) {
    for (std::size_t b = 0; b <= frame_sizes[n - 1]; ++b) {
      const std::string path = temp_path("crash_matrix.jsonl");
      FailPoints::instance().reset();
      FailPointSpec spec;
      spec.action = FailPointSpec::Action::Crash;
      spec.trigger_hit = static_cast<std::size_t>(n);
      spec.partial_bytes = b;
      FailPoints::instance().arm("store.journal.append", spec);

      bool crashed = false;
      {
        serve::EvaluationStore store(path);
        try {
          for (int i = 1; i <= kSessionRecords; ++i) record_nth(store, i);
        } catch (const CrashInjected&) {
          crashed = true;
        }
      }
      ASSERT_TRUE(crashed) << "record " << n << " byte " << b;
      FailPoints::instance().reset();

      // A full frame followed by the crash means record n survived.
      const int kept = b == frame_sizes[n - 1] ? n : n - 1;
      {
        serve::EvaluationStore store(path);
        ASSERT_EQ(store.size(), static_cast<std::size_t>(kept))
            << "record " << n << " byte " << b;
        for (int i = 1; i <= kept; ++i) {
          ASSERT_TRUE(store.lookup("fp", {i}, 0).has_value());
        }
      }
      // Bit-identical recovery: the reopened-and-rewritten file equals a
      // clean session over the surviving prefix.
      ASSERT_EQ(read_file(path), references[kept])
          << "record " << n << " byte " << b;

      // Finish the session; completion must converge byte-for-byte with
      // the uninterrupted run, and survivors must not be re-journaled.
      {
        serve::EvaluationStore store(path);
        for (int i = 1; i <= kSessionRecords; ++i) record_nth(store, i);
        EXPECT_EQ(store.stats().appends,
                  static_cast<std::size_t>(kSessionRecords - kept));
      }
      ASSERT_EQ(read_file(path), golden) << "record " << n << " byte " << b;
      std::remove(path.c_str());
      ++points_enumerated;
    }
  }
  // The sweep really enumerated every byte of every frame.
  std::size_t expected = 0;
  for (const std::size_t s : frame_sizes) expected += s + 1;
  EXPECT_EQ(points_enumerated, static_cast<int>(expected));
}

// Kill the very first write — the header line — at every byte: the next
// open must treat the fragment as a crashed header write and start fresh.
TEST(CrashMatrix, StoreHeaderWriteSurvivesEveryByteBoundary) {
  FailPointGuard guard;
  const std::string header_line = journal_header_line(
      JournalHeader{"metacore-evaluation-store", serve::kStoreVersion});
  // Stop one byte short of the full header: a complete header is just a
  // clean open.
  for (std::size_t b = 0; b < header_line.size(); ++b) {
    const std::string path = temp_path("crash_header.jsonl");
    FailPoints::instance().reset();
    FailPointSpec spec;
    spec.partial_bytes = b;
    FailPoints::instance().arm("store.journal.header", spec);
    EXPECT_THROW(serve::EvaluationStore store(path), CrashInjected);
    FailPoints::instance().reset();

    serve::EvaluationStore store(path);
    EXPECT_EQ(store.size(), 0u);
    record_nth(store, 1);
    EXPECT_EQ(store.stats().appends, 1u);
    std::remove(path.c_str());
  }
}

// Checkpoint flushes are atomic: a crash at the tmp write, the fsync, or
// just before the rename leaves the previous checkpoint untouched; a
// crash just after the rename leaves the new one. Never a torn file.
TEST(CrashMatrix, CheckpointFlushIsAtomicAtEveryBoundary) {
  FailPointGuard guard;
  const std::string path = temp_path("crash_checkpoint.json");

  SearchCheckpoint old_cp;
  old_cp.dimensions = 2;
  old_cp.probabilistic_metric = "ber";
  old_cp.fingerprint["knob"] = 1.0;
  old_cp.journal.push_back({{1, 2}, 0, eval_with_cost(1.0)});

  SearchCheckpoint new_cp = old_cp;
  new_cp.journal.push_back({{3, 4}, 1, eval_with_cost(2.0)});

  save_checkpoint(path, old_cp);
  const std::string old_bytes = read_file(path);
  save_checkpoint(path, new_cp);
  const std::string new_bytes = read_file(path);
  ASSERT_NE(old_bytes, new_bytes);

  struct Boundary {
    const char* point;
    std::size_t partial_bytes;
    bool expect_new;
  };
  const std::vector<Boundary> boundaries = {
      {"checkpoint.write", 0, false},
      {"checkpoint.write", 1, false},
      {"checkpoint.write", new_bytes.size() / 2, false},
      {"checkpoint.write", SIZE_MAX, false},  // full write, die before sync
      {"checkpoint.sync", SIZE_MAX, false},
      {"checkpoint.rename", SIZE_MAX, false},
      {"checkpoint.renamed", SIZE_MAX, true},
  };
  for (const Boundary& boundary : boundaries) {
    write_file(path, old_bytes);
    FailPoints::instance().reset();
    FailPointSpec spec;
    spec.partial_bytes = boundary.partial_bytes;
    FailPoints::instance().arm(boundary.point, spec);
    EXPECT_THROW(save_checkpoint(path, new_cp), CrashInjected)
        << boundary.point;
    FailPoints::instance().reset();

    EXPECT_EQ(read_file(path), boundary.expect_new ? new_bytes : old_bytes)
        << boundary.point;
    // Whatever survived must load: old or new, never torn.
    const SearchCheckpoint loaded = load_checkpoint(path);
    EXPECT_EQ(loaded.journal.size(),
              boundary.expect_new ? new_cp.journal.size()
                                  : old_cp.journal.size())
        << boundary.point;
    // And the next flush recovers fully (stale .tmp is simply rewritten).
    save_checkpoint(path, new_cp);
    EXPECT_EQ(read_file(path), new_bytes) << boundary.point;
  }
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// Compaction publishes through the same atomic-replace: a crash at any of
// its boundaries leaves either the dup-laden old journal or the compacted
// new one — both replay to the same live set.
TEST(CrashMatrix, CompactionCrashLeavesOldOrNewJournal) {
  FailPointGuard guard;
  const std::string ref = reference_journal("compact", 2);

  const std::vector<std::pair<const char*, std::size_t>> boundaries = {
      {"store.compact.write", 0},
      {"store.compact.write", 10},
      {"store.compact.write", SIZE_MAX},
      {"store.compact.sync", SIZE_MAX},
      {"store.compact.rename", SIZE_MAX},
      {"store.compact.renamed", SIZE_MAX},
  };
  for (const auto& [point, partial] : boundaries) {
    const std::string path = temp_path("crash_compact.jsonl");
    // A journal whose dead ratio (2 dup frames / 4) triggers compaction
    // at open.
    const std::string frames = ref.substr(ref.find('\n') + 1);
    write_file(path, ref + frames);

    FailPoints::instance().reset();
    FailPointSpec spec;
    spec.partial_bytes = partial;
    FailPoints::instance().arm(point, spec);
    EXPECT_THROW(serve::EvaluationStore store(path), CrashInjected) << point;
    FailPoints::instance().reset();

    // Old-or-new, never torn: whatever is on disk replays to the same
    // two live records (and the interrupted compaction reruns if the old
    // file survived).
    serve::EvaluationStore store(path);
    EXPECT_EQ(store.size(), 2u) << point;
    ASSERT_TRUE(store.lookup("fp", {1}, 0).has_value()) << point;
    ASSERT_TRUE(store.lookup("fp", {2}, 0).has_value()) << point;
    EXPECT_EQ(store.stats().skipped_records, 0u) << point;
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
}

// --- Corruption fuzz: one flipped byte per record, every record.

TEST(CorruptionFuzz, EveryRecordSkippedWithCountedReasonWhenBitFlipped) {
  FailPointGuard guard;
  constexpr int kRecords = 8;
  const std::string path = temp_path("fuzz.jsonl");
  {
    serve::EvaluationStore store(path);
    for (int n = 1; n <= kRecords; ++n) record_nth(store, n);
  }
  const std::string pristine = read_file(path);

  // Frame boundaries (store payloads contain no raw newlines).
  std::vector<std::pair<std::size_t, std::size_t>> frames;  // (start, size)
  for (std::size_t at = pristine.find('\n') + 1; at < pristine.size();) {
    const std::size_t nl = pristine.find('\n', at);
    frames.emplace_back(at, nl - at + 1);
    at = nl + 1;
  }
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(kRecords));

  for (int n = 0; n < kRecords; ++n) {
    // Deterministic "bit rot": flip one bit somewhere in record n's frame
    // (position varies per record across prefix, CRC field, and payload).
    const auto [start, size] = frames[n];
    std::string damaged = pristine;
    const std::size_t victim = start + (7u * n + 3u) % (size - 1);
    damaged[victim] ^= 0x10;
    write_file(path, damaged);

    serve::EvaluationStore store(path);
    const auto stats = store.stats();
    EXPECT_GE(stats.skipped_records, 1u) << "record " << n;
    EXPECT_FALSE(stats.skip_reasons.empty()) << "record " << n;
    // Every record other than the damaged one survives.
    for (int i = 1; i <= kRecords; ++i) {
      if (i == n + 1) continue;
      EXPECT_TRUE(store.lookup("fp", {i}, 0).has_value())
          << "record " << i << " lost to a flip in record " << n + 1;
    }
    EXPECT_EQ(store.size(), static_cast<std::size_t>(kRecords - 1))
        << "record " << n;
  }
  std::remove(path.c_str());
}

// --- Injected I/O errors: retry-with-backoff, then degraded mode.

TEST(IoErrors, TransientAppendFailureRetriesAndSucceeds) {
  FailPointGuard guard;
  const std::string path = temp_path("transient.jsonl");
  serve::EvaluationStore store(path);
  record_nth(store, 1);
  // The second append's first two attempts fail; the third succeeds.
  FailPointSpec spec;
  spec.action = FailPointSpec::Action::IoError;
  spec.trigger_hit = 2;
  spec.error_count = 2;
  FailPoints::instance().arm("store.journal.append", spec);
  record_nth(store, 2);
  const auto stats = store.stats();
  EXPECT_EQ(stats.io_retries, 2u);
  EXPECT_EQ(stats.appends, 2u);
  EXPECT_EQ(stats.dropped_writes, 0u);
  EXPECT_FALSE(stats.degraded);
  FailPoints::instance().reset();

  serve::EvaluationStore reopened(path);
  EXPECT_EQ(reopened.size(), 2u);
  std::remove(path.c_str());
}

TEST(IoErrors, DeadDeviceDegradesToReadOnlyAndCompactRecovers) {
  FailPointGuard guard;
  const std::string path = temp_path("degraded.jsonl");
  serve::EvaluationStore store(path);
  record_nth(store, 1);
  // The device never comes back: every attempt of every later append
  // fails.
  FailPointSpec spec;
  spec.action = FailPointSpec::Action::IoError;
  spec.trigger_hit = 2;
  spec.error_count = SIZE_MAX;
  FailPoints::instance().arm("store.journal.append", spec);

  record_nth(store, 2);  // exhausts retries, flips degraded — no throw
  EXPECT_TRUE(store.degraded());
  record_nth(store, 3);  // degraded: absorbed in memory, not journaled
  auto stats = store.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.dropped_writes, 2u);
  EXPECT_GT(stats.io_retries, 0u);

  // Reads keep working: the in-memory set has all three records.
  EXPECT_EQ(store.size(), 3u);
  ASSERT_TRUE(store.lookup("fp", {2}, 0).has_value());
  ASSERT_TRUE(store.lookup("fp", {3}, 0).has_value());
  EXPECT_EQ(store.entries_for("fp").size(), 3u);
  // But the journal only holds what made it down before the device died.
  {
    serve::EvaluationStore on_disk(path);
    EXPECT_EQ(on_disk.size(), 1u);
  }

  // Device comes back: a successful compact() re-establishes the journal
  // from the full in-memory set.
  FailPoints::instance().reset();
  EXPECT_GE(store.compact(), 0u);
  EXPECT_FALSE(store.degraded());
  record_nth(store, 4);
  serve::EvaluationStore recovered(path);
  EXPECT_EQ(recovered.size(), 4u);
  std::remove(path.c_str());
}

TEST(IoErrors, SearchSucceedsOverDegradedStore) {
  FailPointGuard guard;
  const std::string path = temp_path("degraded_search.jsonl");
  auto store = std::make_shared<serve::EvaluationStore>(path);
  // Journal dead from the first append on.
  FailPointSpec spec;
  spec.action = FailPointSpec::Action::IoError;
  spec.error_count = SIZE_MAX;
  FailPoints::instance().arm("store.journal.append", spec);

  std::vector<search::ParameterDef> params(2);
  for (int d = 0; d < 2; ++d) {
    params[d].name = "x" + std::to_string(d);
    for (int i = 0; i < 9; ++i) params[d].values.push_back(i / 8.0);
    params[d].correlation = search::Correlation::Smooth;
  }
  search::Objective objective;
  objective.minimize = "cost";
  search::SearchConfig config;
  config.max_resolution = 2;
  config.store = store;
  config.store_fingerprint = "bowl";
  search::MultiresolutionSearch engine(
      search::DesignSpace(params), objective,
      [](const std::vector<double>& x, int) {
        search::Evaluation e;
        e.metrics["cost"] =
            (x[0] - 0.5) * (x[0] - 0.5) + (x[1] - 0.25) * (x[1] - 0.25);
        return e;
      },
      config);
  // The search itself must be oblivious: same result, store degraded.
  const search::SearchResult result = engine.run();
  EXPECT_TRUE(result.found_feasible);
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_TRUE(store->degraded());
  const auto stats = store->stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_GT(stats.dropped_writes, 0u);
  EXPECT_EQ(stats.appends, 0u);
  // The evaluations still landed in memory for this process's reuse.
  EXPECT_EQ(store->size(), stats.dropped_writes);
  std::remove(path.c_str());
}

#else  // !METACORE_FAILPOINTS

TEST(CrashMatrix, RequiresFailPointBuild) {
  GTEST_SKIP() << "built without METACORE_FAILPOINTS";
}

#endif

}  // namespace
}  // namespace metacore::robust
