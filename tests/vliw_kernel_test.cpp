// Tests for the Viterbi kernel generator (the Trimaran-substitute input).
#include <gtest/gtest.h>

#include <tuple>

#include "vliw/viterbi_kernel.hpp"

namespace metacore::vliw {
namespace {

using comm::DecoderKind;
using comm::DecoderSpec;

DecoderSpec spec_for(DecoderKind kind, int k) {
  DecoderSpec spec;
  spec.code = comm::best_rate_half_code(k);
  spec.traceback_depth = 5 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 4;
  spec.normalization_terms = 2;
  return spec;
}

const BasicBlock* find_block(const Kernel& kernel, const std::string& name) {
  for (const auto& block : kernel.blocks) {
    if (block.name == name) return &block;
  }
  return nullptr;
}

TEST(ViterbiKernel, HardDecoderHasNoMultiresBlocks) {
  const Kernel kernel = build_viterbi_kernel(spec_for(DecoderKind::Hard, 5));
  EXPECT_NE(find_block(kernel, "acs"), nullptr);
  EXPECT_NE(find_block(kernel, "traceback"), nullptr);
  EXPECT_EQ(find_block(kernel, "refine"), nullptr);
  EXPECT_EQ(find_block(kernel, "correction"), nullptr);
  for (const auto& op : find_block(kernel, "acs")->ops) {
    EXPECT_NE(op.tag, "select");
  }
}

TEST(ViterbiKernel, MultiresDecoderHasRefinementBlocks) {
  const Kernel kernel =
      build_viterbi_kernel(spec_for(DecoderKind::Multires, 5));
  EXPECT_NE(find_block(kernel, "refine"), nullptr);
  EXPECT_NE(find_block(kernel, "correction"), nullptr);
  // Best-M selection is fused into the ACS sweep.
  int select_ops = 0;
  for (const auto& op : find_block(kernel, "acs")->ops) {
    select_ops += op.tag == "select" ? 1 : 0;
  }
  EXPECT_GE(select_ops, 2);
}

TEST(ViterbiKernel, AcsTripCountEqualsStates) {
  for (int k : {3, 5, 7, 9}) {
    const Kernel kernel = build_viterbi_kernel(spec_for(DecoderKind::Soft, k));
    const BasicBlock* acs = find_block(kernel, "acs");
    ASSERT_NE(acs, nullptr);
    EXPECT_DOUBLE_EQ(acs->trip_count, static_cast<double>(1 << (k - 1)));
  }
}

TEST(ViterbiKernel, RefineTripCountEqualsM) {
  DecoderSpec spec = spec_for(DecoderKind::Multires, 7);
  spec.num_high_res_paths = 12;
  const Kernel kernel = build_viterbi_kernel(spec);
  const BasicBlock* refine = find_block(kernel, "refine");
  ASSERT_NE(refine, nullptr);
  EXPECT_DOUBLE_EQ(refine->trip_count, 12.0);
}

TEST(ViterbiKernel, TracebackIsAmortizedAndSerial) {
  const DecoderSpec spec = spec_for(DecoderKind::Hard, 5);
  const Kernel kernel = build_viterbi_kernel(spec);
  const BasicBlock* tb = find_block(kernel, "traceback");
  ASSERT_NE(tb, nullptr);
  // (L + 2K) / 2K survivor hops per decoded bit.
  EXPECT_NEAR(tb->trip_count, (25.0 + 10.0) / 10.0, 1e-12);
  EXPECT_GT(tb->recurrence_mii, 1);
}

TEST(ViterbiKernel, SoftQuantizationCostsMoreOpsThanHard) {
  const Kernel hard = build_viterbi_kernel(spec_for(DecoderKind::Hard, 5));
  const Kernel soft = build_viterbi_kernel(spec_for(DecoderKind::Soft, 5));
  EXPECT_GT(soft.dynamic_ops(), hard.dynamic_ops());
}

TEST(ViterbiKernel, MultiresCostsMoreOpsThanSoftSameK) {
  // Multires adds selection + refinement work on top of the trellis update.
  const Kernel soft = build_viterbi_kernel(spec_for(DecoderKind::Soft, 5));
  const Kernel multires =
      build_viterbi_kernel(spec_for(DecoderKind::Multires, 5));
  EXPECT_GT(multires.dynamic_ops(), soft.dynamic_ops());
}

TEST(ViterbiKernel, KernelsValidate) {
  for (auto kind :
       {DecoderKind::Hard, DecoderKind::Soft, DecoderKind::Multires}) {
    for (int k : {3, 6, 9}) {
      EXPECT_NO_THROW(build_viterbi_kernel(spec_for(kind, k)).validate());
    }
  }
}

TEST(DatapathBits, GrowsWithResolutionAndDepth) {
  DecoderSpec narrow = spec_for(DecoderKind::Soft, 5);
  narrow.high_res_bits = 2;
  DecoderSpec wide = narrow;
  wide.high_res_bits = 5;
  EXPECT_LT(required_datapath_bits(narrow), required_datapath_bits(wide));

  DecoderSpec shallow = spec_for(DecoderKind::Hard, 5);
  shallow.traceback_depth = 10;
  DecoderSpec deep = shallow;
  deep.traceback_depth = 63 * 4;
  EXPECT_LE(required_datapath_bits(shallow), required_datapath_bits(deep));
}

TEST(DatapathBits, MultiresNarrowerThanSoftAtSameR2) {
  // The core hardware claim of Section 3.3: the bulk ACS datapath of the
  // multiresolution decoder is sized by R1, not R2.
  DecoderSpec soft = spec_for(DecoderKind::Soft, 7);
  soft.high_res_bits = 4;
  DecoderSpec multires = spec_for(DecoderKind::Multires, 7);
  multires.low_res_bits = 1;
  multires.high_res_bits = 4;
  EXPECT_LT(required_datapath_bits(multires), required_datapath_bits(soft));
}

TEST(DatapathBits, WithinPhysicalRange) {
  for (auto kind :
       {DecoderKind::Hard, DecoderKind::Soft, DecoderKind::Multires}) {
    for (int k : {3, 9}) {
      const int bits = required_datapath_bits(spec_for(kind, k));
      EXPECT_GE(bits, 8);
      EXPECT_LE(bits, 32);
    }
  }
}

}  // namespace
}  // namespace metacore::vliw
