// Tests for dependence analysis and list scheduling.
#include <gtest/gtest.h>

#include <map>

#include "vliw/scheduler.hpp"

namespace metacore::vliw {
namespace {

MachineConfig single_issue() {
  MachineConfig m;
  m.num_alus = 1;
  m.num_multipliers = 1;
  m.num_memory_ports = 1;
  m.num_branch_units = 1;
  m.register_file_size = 32;
  m.datapath_bits = 32;
  return m;
}

MachineConfig wide() {
  MachineConfig m = single_issue();
  m.num_alus = 8;
  m.num_memory_ports = 4;
  m.num_multipliers = 2;
  return m;
}

TEST(ScheduleBlock, EmptyBlockIsZeroCycles) {
  BasicBlock block;
  block.name = "empty";
  EXPECT_EQ(schedule_block(block, single_issue()).cycles, 0);
}

TEST(ScheduleBlock, SerialChainTakesSumOfLatencies) {
  BlockBuilder b("chain", 1.0);
  int v = b.live_in();
  for (int i = 0; i < 5; ++i) v = b.emit(OpCode::Add, {v});
  const BlockSchedule s = schedule_block(std::move(b).build(), wide());
  EXPECT_EQ(s.cycles, 5);  // no ILP to exploit
}

TEST(ScheduleBlock, IndependentOpsRunInParallelOnWideMachine) {
  BlockBuilder b("par", 1.0);
  const int x = b.live_in();
  for (int i = 0; i < 8; ++i) b.emit(OpCode::Add, {x});
  const BasicBlock block = std::move(b).build();
  EXPECT_EQ(schedule_block(block, wide()).cycles, 1);
  EXPECT_EQ(schedule_block(block, single_issue()).cycles, 8);
}

TEST(ScheduleBlock, RespectsProducerLatency) {
  BlockBuilder b("lat", 1.0);
  const int p = b.live_in();
  const int v = b.emit(OpCode::Load, {p});   // latency 2
  const int w = b.emit(OpCode::Add, {v});    // must wait 2 cycles
  (void)w;
  const BlockSchedule s = schedule_block(std::move(b).build(), wide());
  EXPECT_EQ(s.issue_cycle[0], 0);
  EXPECT_GE(s.issue_cycle[1], default_latency(OpCode::Load));
}

TEST(ScheduleBlock, StoresSerializeWithLoadsAfterThem) {
  BlockBuilder b("mem", 1.0);
  const int p = b.live_in();
  const int v = b.emit(OpCode::Load, {p});
  b.emit_void(OpCode::Store, {p, v});
  const int w = b.emit(OpCode::Load, {p});  // must follow the store
  (void)w;
  const BlockSchedule s = schedule_block(std::move(b).build(), wide());
  EXPECT_GT(s.issue_cycle[2], s.issue_cycle[1]);
}

TEST(ScheduleBlock, ResourceBoundRespectedEachCycle) {
  BlockBuilder b("res", 1.0);
  const int x = b.live_in();
  for (int i = 0; i < 6; ++i) b.emit(OpCode::Mul, {x});
  const BasicBlock block = std::move(b).build();
  MachineConfig m = single_issue();
  m.num_multipliers = 2;
  const BlockSchedule s = schedule_block(block, m);
  // 6 muls over 2 units: at least 3 issue cycles.
  std::map<int, int> per_cycle;
  for (int c : s.issue_cycle) ++per_cycle[c];
  for (const auto& [cycle, count] : per_cycle) {
    EXPECT_LE(count, 2) << "cycle " << cycle;
  }
  EXPECT_GE(s.cycles, 3 + default_latency(OpCode::Mul) - 1);
}

TEST(ScheduleBlock, ThrowsWhenMachineLacksUnit) {
  BlockBuilder b("nomul", 1.0);
  b.emit(OpCode::Mul, {b.live_in()});
  MachineConfig m = single_issue();
  m.num_multipliers = 0;
  EXPECT_THROW(schedule_block(std::move(b).build(), m), std::invalid_argument);
}

TEST(ScheduleBlock, RegisterPressureOfParallelValues) {
  // 6 values produced immediately and all consumed at the end stay live
  // together.
  BlockBuilder b("press", 1.0);
  const int x = b.live_in();
  std::vector<int> vs;
  for (int i = 0; i < 6; ++i) vs.push_back(b.emit(OpCode::Add, {x}));
  int acc = vs[0];
  for (int i = 1; i < 6; ++i) acc = b.emit(OpCode::Add, {acc, vs[i]});
  const BlockSchedule s = schedule_block(std::move(b).build(), wide());
  EXPECT_GE(s.max_live_values, 6);
}

TEST(ResourceBound, ComputesPerClassCeiling) {
  BlockBuilder b("rb", 1.0);
  const int x = b.live_in();
  for (int i = 0; i < 7; ++i) b.emit(OpCode::Add, {x});
  for (int i = 0; i < 3; ++i) b.emit(OpCode::Load, {x});
  const BasicBlock block = std::move(b).build();
  MachineConfig m = single_issue();
  m.num_alus = 2;
  m.num_memory_ports = 2;
  EXPECT_EQ(resource_bound(block, m), 4);  // ceil(7/2)
}

TEST(ScheduleBlock, MoreResourcesNeverSlower) {
  // Property: widening the machine cannot increase the schedule length.
  BlockBuilder b("prop", 1.0);
  const int x = b.live_in();
  std::vector<int> layer;
  for (int i = 0; i < 6; ++i) layer.push_back(b.emit(OpCode::Load, {x}));
  std::vector<int> sums;
  for (int i = 0; i < 6; i += 2) {
    sums.push_back(b.emit(OpCode::Add, {layer[i], layer[i + 1]}));
  }
  int acc = sums[0];
  for (std::size_t i = 1; i < sums.size(); ++i) {
    acc = b.emit(OpCode::Mul, {acc, sums[i]});
  }
  b.emit_void(OpCode::Store, {x, acc});
  const BasicBlock block = std::move(b).build();
  const int narrow_cycles = schedule_block(block, single_issue()).cycles;
  const int wide_cycles = schedule_block(block, wide()).cycles;
  EXPECT_LE(wide_cycles, narrow_cycles);
}

}  // namespace
}  // namespace metacore::vliw
