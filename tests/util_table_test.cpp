// Unit tests for the table/CSV emitters used by the benchmark harnesses.
#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace metacore::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(TextTable, RejectsBadRows) {
  TextTable t({"only"});
  EXPECT_THROW(t.add_row({"a", "b"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RowCount) {
  TextTable t({"c"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Formatters, Doubles) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_scientific(0.000123, 2), "1.23e-04");
  EXPECT_EQ(format_percent(0.756, 1), "75.6%");
}

}  // namespace
}  // namespace metacore::util
