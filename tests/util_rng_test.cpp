// Unit tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace metacore::util {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, LongJumpChangesStream) {
  Xoshiro256 a(7), b(7);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Random, UniformInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, UniformMeanNearHalf) {
  Random rng(5);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Random, UniformRangeRespectsBounds) {
  Random rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Random, UniformIndexCoversDomainWithoutBias) {
  Random rng(11);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t idx = rng.uniform_index(kBuckets);
    ASSERT_LT(idx, kBuckets);
    ++counts[idx];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kN / static_cast<int>(kBuckets), 600);
  }
}

TEST(Random, NormalMomentsMatchStandardGaussian) {
  Random rng(13);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.02);
}

TEST(Random, ScaledNormalHasRequestedMoments) {
  Random rng(17);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += (x - 5.0) * (x - 5.0);
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
  EXPECT_NEAR(sum2 / kN, 4.0, 0.1);
}

TEST(Random, BernoulliRateMatchesProbability) {
  Random rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Random, BitIsFair) {
  Random rng(23);
  int ones = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bit()) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.5, 0.01);
}

}  // namespace
}  // namespace metacore::util
