// Tests for the IIR MetaCore: the paper's validation example.
#include <gtest/gtest.h>

#include "core/iir_metacore.hpp"

namespace metacore::core {
namespace {

TEST(IirMetaCore, PaperRequirementsMatchSection53) {
  const auto req = paper_bandpass_requirements(1.0);
  EXPECT_EQ(req.filter.band, dsp::BandType::Bandpass);
  EXPECT_EQ(req.filter.family, dsp::FilterFamily::Elliptic);
  EXPECT_NEAR(req.filter.pass_lo, 0.411111, 1e-9);
  EXPECT_NEAR(req.filter.pass_hi, 0.466667, 1e-9);
  EXPECT_NEAR(req.filter.passband_ripple_db, 0.1382, 1e-3);
  EXPECT_NEAR(req.filter.stopband_atten_db, 36.04, 0.01);
  // HYPER-era technology default.
  EXPECT_NEAR(req.tech.feature_um, 1.2, 1e-12);
}

TEST(IirMetaCore, StructureEnumeration) {
  EXPECT_EQ(IirMetaCore::structure_at(0), dsp::StructureKind::DirectForm1);
  EXPECT_EQ(IirMetaCore::structure_at(5), dsp::StructureKind::LatticeLadder);
  EXPECT_THROW(IirMetaCore::structure_at(6), std::invalid_argument);
  EXPECT_THROW(IirMetaCore::structure_at(-1), std::invalid_argument);
}

TEST(IirMetaCore, DesignSpaceDimensions) {
  IirMetaCore core(paper_bandpass_requirements(1.0));
  const auto space = core.design_space();
  EXPECT_EQ(space.dimensions(), 5u);
  EXPECT_EQ(space.parameters()[0].values.size(),
            dsp::all_structures().size());
  EXPECT_GT(space.size(), 100u);
}

TEST(IirMetaCore, EvaluateGoodPointIsFeasible) {
  IirMetaCore core(paper_bandpass_requirements(2.0));
  // Parallel structure, minimum order, 14 bits, 0.7 ripple fraction.
  const auto eval = core.evaluate({4, 0, 14, 0.7, 3}, 0);
  ASSERT_TRUE(eval.feasible);
  EXPECT_TRUE(eval.has_metric("area_mm2"));
  EXPECT_LE(eval.metric("passband_ripple_db"),
            core.requirements().filter.passband_ripple_db * 1.5);
  EXPECT_GT(eval.metric("area_mm2"), 0.1);
}

TEST(IirMetaCore, TinyWordLengthViolatesSpec) {
  IirMetaCore core(paper_bandpass_requirements(2.0));
  // 8-bit direct form I: unstable or far out of spec.
  const auto eval = core.evaluate({0, 0, 8, 1.0, 3}, 0);
  const auto obj = core.objective();
  EXPECT_FALSE(obj.feasible(eval));
}

TEST(IirMetaCore, LadderInfeasibleAtVeryTightPeriod) {
  IirMetaCore core(paper_bandpass_requirements(0.2));
  const auto eval = core.evaluate({5, 0, 12, 0.7, 3}, 0);
  EXPECT_FALSE(eval.feasible);
}

TEST(IirMetaCore, SearchFindsSpecMeetingDesign) {
  IirMetaCore core(paper_bandpass_requirements(1.0));
  search::SearchConfig config;
  config.max_resolution = 2;
  config.regions_per_level = 3;
  config.max_evaluations = 300;
  const auto result = core.search(config);
  ASSERT_TRUE(result.found_feasible);
  const auto& eval = result.best.eval;
  EXPECT_LE(eval.metric("passband_ripple_db"),
            core.requirements().filter.passband_ripple_db + 1e-9);
  EXPECT_LE(eval.metric("stopband_gain_db"),
            -core.requirements().filter.stopband_atten_db + 1e-9);
  // The chosen structure should not be a raw direct form (word-length cost).
  const auto structure = IirMetaCore::structure_at(
      static_cast<int>(result.best.values[0]));
  EXPECT_NE(structure, dsp::StructureKind::DirectForm1);
}

TEST(IirMetaCore, BestFeasibleBelowAverageFeasible) {
  // The headline Table 4 property: the optimized design is far below the
  // average evaluated candidate.
  IirMetaCore core(paper_bandpass_requirements(1.0));
  search::SearchConfig config;
  config.max_resolution = 1;
  config.max_evaluations = 150;
  const auto result = core.search(config);
  ASSERT_TRUE(result.found_feasible);
  double sum = 0.0;
  int n = 0;
  for (const auto& p : result.history) {
    if (p.eval.feasible && p.eval.has_metric("area_mm2")) {
      sum += p.eval.metric("area_mm2");
      ++n;
    }
  }
  ASSERT_GT(n, 5);
  EXPECT_LT(result.best.eval.metric("area_mm2"), sum / n);
}

TEST(IirMetaCore, RejectsBadRequirements) {
  auto req = paper_bandpass_requirements(1.0);
  req.sample_period_us = 0.0;
  EXPECT_THROW(IirMetaCore{req}, std::invalid_argument);
  req = paper_bandpass_requirements(1.0);
  req.filter.pass_lo = 0.9;
  EXPECT_THROW(IirMetaCore{req}, std::invalid_argument);
}

TEST(IirMetaCore, RejectsWrongPointArity) {
  IirMetaCore core(paper_bandpass_requirements(1.0));
  EXPECT_THROW(core.evaluate({0, 0}, 0), std::invalid_argument);
}

TEST(IirMetaCore, FamilyDimensionFixedByDefault) {
  IirMetaCore fixed(paper_bandpass_requirements(1.0));
  EXPECT_EQ(fixed.design_space().parameters()[4].values.size(), 1u);
  auto req = paper_bandpass_requirements(1.0);
  req.explore_family = true;
  IirMetaCore open(req);
  EXPECT_EQ(open.design_space().parameters()[4].values.size(), 4u);
}

TEST(IirMetaCore, FamilyExplorationEvaluatesChebyshev) {
  auto req = paper_bandpass_requirements(2.0);
  req.explore_family = true;
  IirMetaCore core(req);
  // Chebyshev-I, minimum order, 14 bits, full ripple budget.
  const auto eval = core.evaluate({4, 0, 14, 0.7, 1}, 0);
  EXPECT_TRUE(eval.feasible);
  EXPECT_TRUE(eval.has_metric("area_mm2"));
}

}  // namespace
}  // namespace metacore::core
