// Unit tests for numeric helpers and the multilinear interpolator.
#include <gtest/gtest.h>

#include "util/math.hpp"

namespace metacore::util {
namespace {

TEST(QFunction, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-12);
  EXPECT_NEAR(q_function(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(q_function(3.0), 0.0013499, 1e-6);
  EXPECT_NEAR(q_function(-1.0), 1.0 - 0.158655, 1e-5);
}

TEST(QFunction, InverseRoundTrip) {
  for (double p : {0.4, 0.1, 1e-3, 1e-6, 1e-9}) {
    EXPECT_NEAR(q_function(q_function_inv(p)) / p, 1.0, 1e-6) << p;
  }
}

TEST(QFunction, InverseRejectsOutOfRange) {
  EXPECT_THROW(q_function_inv(0.0), std::domain_error);
  EXPECT_THROW(q_function_inv(1.0), std::domain_error);
  EXPECT_THROW(q_function_inv(-0.1), std::domain_error);
}

TEST(BpskBer, MatchesTextbookValues) {
  // Eb/N0 = 0 dB -> BER ~ 7.86e-2; 9.6 dB -> ~1e-5.
  EXPECT_NEAR(bpsk_ber(1.0), 0.0786, 1e-3);
  EXPECT_NEAR(bpsk_ber(db_to_linear(9.6)), 1e-5, 3e-6);
}

TEST(DbConversions, RoundTrip) {
  for (double db : {-20.0, -3.0, 0.0, 3.0, 10.0, 30.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
  }
}

TEST(Interp1, ExactAtKnots) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{5.0, 7.0, 3.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 2.0), 3.0);
}

TEST(Interp1, LinearBetweenKnots) {
  const std::vector<double> xs{0.0, 2.0};
  const std::vector<double> ys{0.0, 10.0};
  EXPECT_NEAR(interp1(xs, ys, 0.5), 2.5, 1e-12);
  EXPECT_NEAR(interp1(xs, ys, 1.5), 7.5, 1e-12);
}

TEST(Interp1, ClampsOutsideGrid) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{4.0, 8.0};
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(interp1(xs, ys, 9.0), 8.0);
}

TEST(Interp1, RejectsMismatchedGrids) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{4.0};
  EXPECT_THROW(interp1(xs, ys, 1.5), std::invalid_argument);
  EXPECT_THROW(interp1({}, {}, 1.5), std::invalid_argument);
}

TEST(MultilinearInterpolator, ExactAtGridPoints2D) {
  MultilinearInterpolator interp({{0.0, 1.0}, {0.0, 1.0}},
                                 {1.0, 2.0, 3.0, 4.0});
  // values row-major, last axis fastest: f(0,0)=1 f(0,1)=2 f(1,0)=3 f(1,1)=4
  EXPECT_DOUBLE_EQ(interp(std::vector<double>{0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(interp(std::vector<double>{0.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(interp(std::vector<double>{1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(interp(std::vector<double>{1.0, 1.0}), 4.0);
}

TEST(MultilinearInterpolator, BilinearCenter) {
  MultilinearInterpolator interp({{0.0, 1.0}, {0.0, 1.0}},
                                 {1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(interp(std::vector<double>{0.5, 0.5}), 2.5, 1e-12);
}

TEST(MultilinearInterpolator, ReproducesLinearFunction3D) {
  // f(x,y,z) = 2x + 3y - z + 1 is reproduced exactly by trilinear interp.
  std::vector<std::vector<double>> axes{{0.0, 2.0}, {0.0, 1.0, 4.0}, {0.0, 3.0}};
  std::vector<double> values;
  for (double x : axes[0]) {
    for (double y : axes[1]) {
      for (double z : axes[2]) {
        values.push_back(2 * x + 3 * y - z + 1);
      }
    }
  }
  MultilinearInterpolator interp(axes, values);
  EXPECT_NEAR(interp(std::vector<double>{1.0, 2.0, 1.5}), 2 + 6 - 1.5 + 1, 1e-9);
  EXPECT_NEAR(interp(std::vector<double>{0.5, 0.5, 0.5}), 1 + 1.5 - 0.5 + 1, 1e-9);
}

TEST(MultilinearInterpolator, ClampsOutsideDomain) {
  MultilinearInterpolator interp({{0.0, 1.0}}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(interp(std::vector<double>{-5.0}), 10.0);
  EXPECT_DOUBLE_EQ(interp(std::vector<double>{99.0}), 20.0);
}

TEST(MultilinearInterpolator, SingletonAxis) {
  MultilinearInterpolator interp({{2.0}, {0.0, 1.0}}, {3.0, 5.0});
  EXPECT_NEAR(interp(std::vector<double>{2.0, 0.5}), 4.0, 1e-12);
}

TEST(MultilinearInterpolator, RejectsBadConstruction) {
  EXPECT_THROW(MultilinearInterpolator({}, {}), std::invalid_argument);
  EXPECT_THROW(MultilinearInterpolator({{1.0, 0.0}}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(MultilinearInterpolator({{0.0, 1.0}}, {1.0}),
               std::invalid_argument);
  MultilinearInterpolator ok({{0.0, 1.0}}, {1.0, 2.0});
  EXPECT_THROW(ok(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(Ipow, SmallPowers) {
  EXPECT_EQ(ipow(2, 0), 1u);
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(10, 8), 100000000u);
  EXPECT_EQ(ipow(7, 3), 343u);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0, 1e-9));
}

}  // namespace
}  // namespace metacore::util
