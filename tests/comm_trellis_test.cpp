// Structural invariants of the decoding trellis, checked against the
// encoder across all tabulated constraint lengths.
#include <gtest/gtest.h>

#include "comm/convolutional.hpp"
#include "comm/trellis.hpp"

namespace metacore::comm {
namespace {

class TrellisSweep : public ::testing::TestWithParam<int> {};

TEST_P(TrellisSweep, TransitionsMatchEncoderLogic) {
  const CodeSpec code = best_rate_half_code(GetParam());
  const Trellis trellis(code);
  // For every state and input, replaying the encoder from that state must
  // produce the trellis's recorded outputs and successor.
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(trellis.num_states());
       ++s) {
    for (int bit = 0; bit < 2; ++bit) {
      // Drive a fresh encoder into state s by feeding the state bits oldest
      // first (state bit 0 is the oldest register).
      ConvolutionalEncoder enc(code);
      for (int r = 0; r < code.constraint_length - 1; ++r) {
        enc.encode_bit(static_cast<int>((s >> r) & 1u));
      }
      ASSERT_EQ(enc.state(), s);
      const std::uint32_t out = enc.encode_bit(bit);
      EXPECT_EQ(trellis.output_symbols(s, bit), out);
      EXPECT_EQ(trellis.next_state(s, bit), enc.state());
    }
  }
}

TEST_P(TrellisSweep, EveryStateHasExactlyTwoPredecessors) {
  const Trellis trellis(best_rate_half_code(GetParam()));
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(trellis.num_states());
       ++s) {
    const auto& preds = trellis.predecessors(s);
    EXPECT_NE(preds[0].from_state, preds[1].from_state);
    for (const auto& p : preds) {
      EXPECT_EQ(trellis.next_state(p.from_state, p.input_bit), s);
      EXPECT_EQ(trellis.output_symbols(p.from_state, p.input_bit), p.symbols);
    }
  }
}

TEST_P(TrellisSweep, SuccessorsPartitionIntoUpperLowerHalves) {
  // With the shift-register convention, input bit b sends every state to
  // the half of the state space selected by b's MSB position.
  const Trellis trellis(best_rate_half_code(GetParam()));
  const int k = trellis.spec().constraint_length;
  const std::uint32_t msb = 1u << (k - 2);
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(trellis.num_states());
       ++s) {
    EXPECT_EQ(trellis.next_state(s, 0) & msb, 0u);
    EXPECT_EQ(trellis.next_state(s, 1) & msb, msb);
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, TrellisSweep, ::testing::Range(3, 10));

TEST(Trellis, SymbolsPerStepMatchesRate) {
  EXPECT_EQ(Trellis(best_rate_half_code(3)).symbols_per_step(), 2);
  const CodeSpec third{3, {07, 05, 06}};
  EXPECT_EQ(Trellis(third).symbols_per_step(), 3);
}

TEST(Trellis, RejectsInvalidSpec) {
  EXPECT_THROW(Trellis(CodeSpec{3, {0}}), std::invalid_argument);
}

}  // namespace
}  // namespace metacore::comm
