// Tests for analog lowpass prototypes across all four families.
#include <gtest/gtest.h>

#include "dsp/prototypes.hpp"

namespace metacore::dsp {
namespace {

double magnitude_at(const Zpk& zpk, double omega) {
  return std::abs(zpk.response(Complex{0.0, omega}));
}

class FamilySweep : public ::testing::TestWithParam<FilterFamily> {};

TEST_P(FamilySweep, PolesInLeftHalfPlane) {
  const Zpk proto = analog_lowpass_prototype(GetParam(), 5, 0.5, 40.0);
  for (const Complex& p : proto.poles) {
    EXPECT_LT(p.real(), 0.0);
  }
}

TEST_P(FamilySweep, PassbandEdgeAttenuationMatchesRipple) {
  // All families except Chebyshev-II are passband-normalized: attenuation
  // at Omega = 1 equals the ripple spec.
  if (GetParam() == FilterFamily::Chebyshev2) GTEST_SKIP();
  const double rp = 0.75;
  const Zpk proto = analog_lowpass_prototype(GetParam(), 4, rp, 40.0);
  const double att_db = -20.0 * std::log10(magnitude_at(proto, 1.0));
  EXPECT_NEAR(att_db, rp, 0.02);
}

TEST_P(FamilySweep, MagnitudeFallsPastCutoff) {
  const Zpk proto = analog_lowpass_prototype(GetParam(), 5, 0.5, 40.0);
  EXPECT_GT(magnitude_at(proto, 0.1), magnitude_at(proto, 10.0));
  EXPECT_LT(magnitude_at(proto, 10.0), 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::Values(FilterFamily::Butterworth,
                                           FilterFamily::Chebyshev1,
                                           FilterFamily::Chebyshev2,
                                           FilterFamily::Elliptic));

TEST(Butterworth, MaximallyFlatAtDc) {
  const Zpk proto =
      analog_lowpass_prototype(FilterFamily::Butterworth, 4, 3.0103, 40.0);
  EXPECT_NEAR(magnitude_at(proto, 0.0), 1.0, 1e-9);
  // Monotone decrease.
  double prev = 1.0;
  for (double w = 0.2; w < 4.0; w += 0.2) {
    const double mag = magnitude_at(proto, w);
    EXPECT_LT(mag, prev + 1e-12);
    prev = mag;
  }
}

TEST(Chebyshev1, EquirippleInPassband) {
  const double rp = 1.0;
  const Zpk proto =
      analog_lowpass_prototype(FilterFamily::Chebyshev1, 5, rp, 40.0);
  // The response must oscillate between 1 and 10^(-rp/20) in [0, 1].
  const double floor_mag = std::pow(10.0, -rp / 20.0);
  double min_mag = 1e9, max_mag = 0.0;
  for (double w = 0.0; w <= 1.0; w += 0.001) {
    const double mag = magnitude_at(proto, w);
    min_mag = std::min(min_mag, mag);
    max_mag = std::max(max_mag, mag);
  }
  EXPECT_NEAR(max_mag, 1.0, 1e-3);
  EXPECT_NEAR(min_mag, floor_mag, 1e-3);
}

TEST(Chebyshev2, EquirippleStopbandAtSpec) {
  const double rs = 40.0;
  const Zpk proto =
      analog_lowpass_prototype(FilterFamily::Chebyshev2, 5, 0.5, rs);
  // Beyond the (normalized) stopband edge at 1, the gain stays at or below
  // -rs and touches it.
  double max_stop = 0.0;
  for (double w = 1.0; w < 30.0; w += 0.01) {
    max_stop = std::max(max_stop, magnitude_at(proto, w));
  }
  EXPECT_NEAR(20.0 * std::log10(max_stop), -rs, 0.1);
}

TEST(Elliptic, EquirippleBothBands) {
  const double rp = 0.2, rs = 45.0;
  const Zpk proto =
      analog_lowpass_prototype(FilterFamily::Elliptic, 5, rp, rs);
  double min_pass = 1e9;
  for (double w = 0.0; w <= 1.0; w += 0.0005) {
    min_pass = std::min(min_pass, magnitude_at(proto, w));
  }
  EXPECT_NEAR(-20.0 * std::log10(min_pass), rp, 0.05);
  // Stopband: find the edge from the degree equation by scanning for where
  // attenuation first reaches rs, then confirm it never recovers.
  double max_stop = 0.0;
  for (double w = 3.0; w < 50.0; w += 0.01) {
    max_stop = std::max(max_stop, magnitude_at(proto, w));
  }
  EXPECT_LE(20.0 * std::log10(max_stop), -rs + 0.2);
}

TEST(Elliptic, TransmissionZerosOnImaginaryAxis) {
  const Zpk proto =
      analog_lowpass_prototype(FilterFamily::Elliptic, 4, 0.2, 45.0);
  ASSERT_EQ(proto.zeros.size(), 4u);
  for (const Complex& z : proto.zeros) {
    EXPECT_NEAR(z.real(), 0.0, 1e-9);
    EXPECT_GT(std::abs(z.imag()), 1.0);  // zeros beyond the stopband edge
  }
}

TEST(MinimumOrder, TextbookValues) {
  // Butterworth: wp=1, ws=2, rp=1dB, rs=40dB -> N=8 (classic exercise).
  EXPECT_EQ(minimum_order(FilterFamily::Butterworth, 1.0, 2.0, 1.0, 40.0), 8);
  // Chebyshev needs fewer, elliptic fewest.
  const int cheb = minimum_order(FilterFamily::Chebyshev1, 1.0, 2.0, 1.0, 40.0);
  const int ellip = minimum_order(FilterFamily::Elliptic, 1.0, 2.0, 1.0, 40.0);
  EXPECT_LT(cheb, 8);
  EXPECT_LE(ellip, cheb);
}

TEST(MinimumOrder, Rejections) {
  EXPECT_THROW(minimum_order(FilterFamily::Butterworth, 2.0, 1.0, 1.0, 40.0),
               std::invalid_argument);
  EXPECT_THROW(minimum_order(FilterFamily::Butterworth, 0.0, 1.0, 1.0, 40.0),
               std::invalid_argument);
}

TEST(Prototype, RejectsBadOrderAndRipple) {
  EXPECT_THROW(analog_lowpass_prototype(FilterFamily::Butterworth, 0, 1.0, 40.0),
               std::invalid_argument);
  EXPECT_THROW(analog_lowpass_prototype(FilterFamily::Butterworth, 25, 1.0, 40.0),
               std::invalid_argument);
  EXPECT_THROW(analog_lowpass_prototype(FilterFamily::Elliptic, 4, 0.0, 40.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace metacore::dsp
