// Unit tests for statistics accumulators and confidence intervals.
#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace metacore::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i * i - i;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 2.0, 1e-12);
}

TEST(ProportionEstimate, RateAndMerge) {
  ProportionEstimate p;
  for (int i = 0; i < 100; ++i) p.add(i < 25);
  EXPECT_DOUBLE_EQ(p.rate(), 0.25);
  ProportionEstimate q;
  q.add(true);
  p.merge(q);
  EXPECT_EQ(p.trials, 101u);
  EXPECT_EQ(p.successes, 26u);
}

TEST(ProportionEstimate, WilsonBracketsRate) {
  ProportionEstimate p;
  p.successes = 10;
  p.trials = 1000;
  const auto iv = p.wilson();
  EXPECT_LT(iv.low, 0.01);
  EXPECT_GT(iv.high, 0.01);
  EXPECT_GT(iv.low, 0.0);
  EXPECT_LT(iv.high, 0.03);
}

TEST(ProportionEstimate, WilsonHandlesZeroSuccesses) {
  ProportionEstimate p;
  p.successes = 0;
  p.trials = 10000;
  const auto iv = p.wilson();
  EXPECT_DOUBLE_EQ(iv.low, 0.0);
  EXPECT_GT(iv.high, 0.0);
  EXPECT_LT(iv.high, 1e-3);
}

TEST(ProportionEstimate, WilsonNoTrials) {
  ProportionEstimate p;
  const auto iv = p.wilson();
  EXPECT_DOUBLE_EQ(iv.low, 0.0);
  EXPECT_DOUBLE_EQ(iv.high, 1.0);
}

TEST(ProportionEstimate, WilsonNarrowsWithEvidence) {
  ProportionEstimate small, big;
  small.successes = 5;
  small.trials = 50;
  big.successes = 500;
  big.trials = 5000;
  EXPECT_LT(big.wilson().high - big.wilson().low,
            small.wilson().high - small.wilson().low);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Percentile, InterpolatesOrderStatistics) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 15.0);
}

TEST(Percentile, Rejections) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

}  // namespace
}  // namespace metacore::util
