// Tests for transfer-function evaluation, stability, and band measurement.
#include <gtest/gtest.h>

#include "dsp/transfer_function.hpp"

namespace metacore::dsp {
namespace {

TEST(TransferFunction, FirstOrderLowpassResponse) {
  // H(z) = (1-a) / (1 - a z^-1), a = 0.5: DC gain 1, Nyquist gain 1/3.
  TransferFunction tf{{0.5}, {1.0, -0.5}};
  EXPECT_NEAR(tf.magnitude(0.0), 1.0, 1e-12);
  EXPECT_NEAR(tf.magnitude(M_PI), 0.5 / 1.5, 1e-12);
  EXPECT_LT(tf.magnitude(M_PI / 2), tf.magnitude(0.0));
}

TEST(TransferFunction, MagnitudeDbOfUnityIsZero) {
  TransferFunction tf{{1.0}, {1.0}};
  EXPECT_NEAR(tf.magnitude_db(1.0), 0.0, 1e-12);
}

TEST(TransferFunction, NormalizeDividesByA0) {
  TransferFunction tf{{2.0, 4.0}, {2.0, 1.0}};
  tf.normalize();
  EXPECT_DOUBLE_EQ(tf.a[0], 1.0);
  EXPECT_DOUBLE_EQ(tf.a[1], 0.5);
  EXPECT_DOUBLE_EQ(tf.b[0], 1.0);
  EXPECT_DOUBLE_EQ(tf.b[1], 2.0);
  TransferFunction bad{{1.0}, {0.0, 1.0}};
  EXPECT_THROW(bad.normalize(), std::invalid_argument);
}

TEST(TransferFunction, PolesAndZerosOfBiquad) {
  // Poles at 0.5 e^{+-j pi/3}: a = [1, -0.5, 0.25].
  TransferFunction tf{{1.0, 0.0, 0.0}, {1.0, -0.5, 0.25}};
  auto poles = tf.poles();
  ASSERT_EQ(poles.size(), 2u);
  EXPECT_NEAR(std::abs(poles[0]), 0.5, 1e-9);
  EXPECT_NEAR(std::abs(poles[1]), 0.5, 1e-9);
}

TEST(TransferFunction, StabilityDetection) {
  TransferFunction stable{{1.0}, {1.0, -0.9}};   // pole at 0.9
  TransferFunction unstable{{1.0}, {1.0, -1.1}}; // pole at 1.1
  TransferFunction marginal{{1.0}, {1.0, -1.0}}; // pole at 1.0
  EXPECT_TRUE(stable.is_stable());
  EXPECT_FALSE(unstable.is_stable());
  EXPECT_FALSE(marginal.is_stable());
}

TEST(TransferFunction, OrderIgnoresTrailingZeros) {
  TransferFunction tf{{1.0, 2.0, 0.0}, {1.0, 0.0, 0.0}};
  EXPECT_EQ(tf.order(), 1);
}

TEST(Zpk, ResponseMatchesTfConversion) {
  Zpk zpk;
  zpk.zeros = {Complex{-1.0, 0.0}};
  zpk.poles = {Complex{0.5, 0.3}, Complex{0.5, -0.3}};
  zpk.gain = 0.25;
  const TransferFunction tf = zpk.to_tf();
  for (double w = 0.1; w < 3.1; w += 0.3) {
    const Complex z = std::polar(1.0, w);
    EXPECT_NEAR(std::abs(zpk.response(z)), tf.magnitude(w), 1e-9) << w;
  }
}

TEST(Zpk, ToTfProducesMonicDenominator) {
  Zpk zpk;
  zpk.poles = {Complex{0.2, 0.0}};
  zpk.gain = 3.0;
  const TransferFunction tf = zpk.to_tf();
  EXPECT_DOUBLE_EQ(tf.a[0], 1.0);
}

TEST(MeasureBandpass, IdealAllpassMetrics) {
  TransferFunction unity{{1.0}, {1.0}};
  const BandMetrics m = measure_bandpass(unity, 0.4, 0.5, 0.3, 0.6);
  EXPECT_NEAR(m.passband_ripple_db, 0.0, 1e-9);
  EXPECT_NEAR(m.min_passband_gain_db, 0.0, 1e-9);
  // An allpass leaks full power into the stopband.
  EXPECT_NEAR(m.max_stopband_gain_db, 0.0, 1e-9);
}

TEST(MeasureBandpass, RejectsBadBandOrdering) {
  TransferFunction unity{{1.0}, {1.0}};
  EXPECT_THROW(measure_bandpass(unity, 0.5, 0.4, 0.3, 0.6),
               std::invalid_argument);
  EXPECT_THROW(measure_bandpass(unity, 0.4, 0.5, 0.45, 0.6),
               std::invalid_argument);
}

TEST(MeasureBandpass, DetectsRippleOfKnownFilter) {
  // A resonator has large response variation across a wide "passband".
  TransferFunction resonator{{1.0, 0.0, 0.0}, {1.0, -1.2, 0.72}};
  const BandMetrics m = measure_bandpass(resonator, 0.1, 0.5, 0.05, 0.9);
  EXPECT_GT(m.passband_ripple_db, 1.0);
  EXPECT_GT(m.bandwidth_3db, 0.0);
}

}  // namespace
}  // namespace metacore::dsp
