// Tests for objective/constraint evaluation and ordering.
#include <gtest/gtest.h>

#include "search/objective.hpp"

namespace metacore::search {
namespace {

Evaluation make_eval(double ber, double area, bool feasible = true) {
  Evaluation e;
  e.feasible = feasible;
  e.metrics["ber"] = ber;
  e.metrics["area"] = area;
  return e;
}

Objective area_under_ber(double ber_bound) {
  Objective obj;
  obj.minimize = "area";
  obj.constraints.push_back(
      {Constraint::Kind::UpperBound, "ber", ber_bound});
  return obj;
}

TEST(Evaluation, MetricAccess) {
  const Evaluation e = make_eval(1e-3, 2.0);
  EXPECT_DOUBLE_EQ(e.metric("ber"), 1e-3);
  EXPECT_TRUE(e.has_metric("area"));
  EXPECT_FALSE(e.has_metric("latency"));
  EXPECT_THROW(e.metric("latency"), std::invalid_argument);
}

TEST(Constraint, UpperBoundSatisfaction) {
  const Constraint c{Constraint::Kind::UpperBound, "ber", 1e-3};
  EXPECT_TRUE(c.satisfied(make_eval(1e-4, 1.0)));
  EXPECT_TRUE(c.satisfied(make_eval(1e-3, 1.0)));
  EXPECT_FALSE(c.satisfied(make_eval(2e-3, 1.0)));
  EXPECT_LT(c.violation(make_eval(1e-4, 1.0)), 0.0);
  EXPECT_GT(c.violation(make_eval(2e-3, 1.0)), 0.0);
}

TEST(Constraint, LowerBoundSatisfaction) {
  const Constraint c{Constraint::Kind::LowerBound, "area", 1.0};
  EXPECT_TRUE(c.satisfied(make_eval(0.0, 2.0)));
  EXPECT_FALSE(c.satisfied(make_eval(0.0, 0.5)));
}

TEST(Constraint, MissingMetricCountsAsViolated) {
  const Constraint c{Constraint::Kind::UpperBound, "latency", 5.0};
  EXPECT_FALSE(c.satisfied(make_eval(0.0, 1.0)));
}

TEST(Objective, FeasibilityRequiresAllConstraintsAndIntrinsicFlag) {
  const Objective obj = area_under_ber(1e-3);
  EXPECT_TRUE(obj.feasible(make_eval(1e-4, 1.0)));
  EXPECT_FALSE(obj.feasible(make_eval(1e-2, 1.0)));
  EXPECT_FALSE(obj.feasible(make_eval(1e-4, 1.0, /*feasible=*/false)));
}

TEST(Objective, BetterPrefersFeasible) {
  const Objective obj = area_under_ber(1e-3);
  const auto feasible_big = make_eval(1e-4, 100.0);
  const auto infeasible_small = make_eval(1e-2, 0.1);
  EXPECT_TRUE(obj.better(feasible_big, infeasible_small));
  EXPECT_FALSE(obj.better(infeasible_small, feasible_big));
}

TEST(Objective, BetterComparesObjectiveAmongFeasible) {
  const Objective obj = area_under_ber(1e-3);
  EXPECT_TRUE(obj.better(make_eval(1e-4, 1.0), make_eval(1e-4, 2.0)));
  EXPECT_FALSE(obj.better(make_eval(1e-4, 2.0), make_eval(1e-4, 1.0)));
}

TEST(Objective, BetterComparesViolationAmongInfeasible) {
  const Objective obj = area_under_ber(1e-3);
  const auto slightly_off = make_eval(1.5e-3, 1.0);
  const auto badly_off = make_eval(1e-1, 1.0);
  EXPECT_TRUE(obj.better(slightly_off, badly_off));
  EXPECT_FALSE(obj.better(badly_off, slightly_off));
}

TEST(Objective, EmptyMinimizeComparesOnlyFeasibility) {
  Objective obj;
  obj.constraints.push_back({Constraint::Kind::UpperBound, "ber", 1e-3});
  EXPECT_FALSE(obj.better(make_eval(1e-4, 1.0), make_eval(1e-4, 2.0)));
  EXPECT_TRUE(obj.better(make_eval(1e-4, 5.0), make_eval(1.0, 1.0)));
}

}  // namespace
}  // namespace metacore::search
