// Tests for the multiresolution Viterbi decoder — the paper's core
// algorithmic contribution.
#include <gtest/gtest.h>

#include <tuple>

#include "comm/ber.hpp"
#include "comm/channel.hpp"
#include "comm/multires_viterbi.hpp"
#include "util/rng.hpp"

namespace metacore::comm {
namespace {

std::vector<int> random_bits(std::size_t n, std::uint64_t seed) {
  util::Random rng(seed);
  std::vector<int> bits(n);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

MultiresConfig paper_config(int k) {
  MultiresConfig cfg;
  cfg.traceback_depth = 5 * k;
  cfg.low_res_bits = 1;
  cfg.high_res_bits = 3;
  cfg.method = QuantizationMethod::AdaptiveSoft;
  cfg.num_high_res_paths = 4;
  cfg.normalization_terms = 1;
  return cfg;
}

TEST(MultiresViterbi, DecodesNoiselessStreamExactly) {
  const Trellis trellis(best_rate_half_code(5));
  MultiresViterbiDecoder decoder(trellis, paper_config(5), 1.0, 0.5);
  const auto bits = random_bits(400, 77);
  ConvolutionalEncoder enc(trellis.spec());
  BpskModulator mod;
  const auto rx = mod.modulate(enc.encode(bits));
  EXPECT_EQ(decoder.decode(rx), bits);
}

// Property sweep: noiseless identity across K, M, N, and resolutions.
class MultiresIdentitySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(MultiresIdentitySweep, NoiselessIdentity) {
  const auto [k, m, n_norm, r2] = GetParam();
  const Trellis trellis(best_rate_half_code(k));
  MultiresConfig cfg;
  cfg.traceback_depth = 5 * k;
  cfg.low_res_bits = 1;
  cfg.high_res_bits = r2;
  cfg.num_high_res_paths = std::min(m, trellis.num_states());
  cfg.normalization_terms = std::min(n_norm, cfg.num_high_res_paths);
  MultiresViterbiDecoder decoder(trellis, cfg, 1.0, 0.5);
  const auto bits = random_bits(300, 100 + static_cast<std::uint64_t>(k));
  ConvolutionalEncoder enc(trellis.spec());
  BpskModulator mod;
  const auto rx = mod.modulate(enc.encode(bits));
  EXPECT_EQ(decoder.decode(rx), bits)
      << "K=" << k << " M=" << m << " N=" << n_norm << " R2=" << r2;
}

INSTANTIATE_TEST_SUITE_P(ParamSweep, MultiresIdentitySweep,
                         ::testing::Combine(::testing::Values(3, 5, 7),
                                            ::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(2, 3, 4)));

TEST(MultiresViterbi, DegeneratesToSoftWhenAllPathsRefined) {
  // M = all states and R1 = R2 makes the refinement an exact recomputation;
  // the decoded stream must match the plain soft decoder's bit for bit.
  const Trellis trellis(best_rate_half_code(5));
  MultiresConfig cfg;
  cfg.traceback_depth = 25;
  cfg.low_res_bits = 3;
  cfg.high_res_bits = 3;
  cfg.method = QuantizationMethod::AdaptiveSoft;
  cfg.num_high_res_paths = trellis.num_states();
  cfg.normalization_terms = 1;

  const double sigma = 0.6;
  MultiresViterbiDecoder multires(trellis, cfg, 1.0, sigma);
  auto soft = make_soft_decoder(trellis, 25, 3,
                                QuantizationMethod::AdaptiveSoft, 1.0, sigma);

  const auto bits = random_bits(2000, 31337);
  ConvolutionalEncoder enc(trellis.spec());
  BpskModulator mod;
  AwgnChannel channel(2.0, 1.0, 99);
  const auto rx = channel.transmit(mod.modulate(enc.encode(bits)));
  EXPECT_EQ(multires.decode(rx), soft->decode(rx));
}

TEST(MultiresViterbi, BerOrderingHardMultiresSoft) {
  // The headline property (Figure 8): multiresolution closes most of the
  // hard->soft gap, and more refined paths help.
  BerRunConfig cfg;
  cfg.max_bits = 60'000;
  cfg.min_bits = 60'000;
  cfg.max_errors = 1'000'000;

  DecoderSpec hard;
  hard.code = best_rate_half_code(5);
  hard.traceback_depth = 25;
  hard.kind = DecoderKind::Hard;

  DecoderSpec soft = hard;
  soft.kind = DecoderKind::Soft;
  soft.high_res_bits = 3;

  DecoderSpec m4 = hard;
  m4.kind = DecoderKind::Multires;
  m4.low_res_bits = 1;
  m4.high_res_bits = 3;
  m4.num_high_res_paths = 4;

  DecoderSpec m8 = m4;
  m8.num_high_res_paths = 8;

  const double esn0 = 1.0;
  const double ber_hard = measure_ber(hard, esn0, cfg).ber();
  const double ber_soft = measure_ber(soft, esn0, cfg).ber();
  const double ber_m4 = measure_ber(m4, esn0, cfg).ber();
  const double ber_m8 = measure_ber(m8, esn0, cfg).ber();

  EXPECT_LT(ber_soft, ber_m8);
  EXPECT_LT(ber_m8, ber_m4);
  EXPECT_LT(ber_m4, ber_hard);
  // Paper: M=4 improves ~64% over hard; require at least 30% here to keep
  // the test robust to Monte-Carlo noise.
  EXPECT_LT(ber_m4, 0.7 * ber_hard);
}

TEST(MultiresViterbi, AveragedNormalizationStillDecodes) {
  // N > 1 (averaging several metric differences) is the paper's suggested
  // improvement; it must not break decoding.
  const Trellis trellis(best_rate_half_code(5));
  for (int n_norm : {1, 2, 4}) {
    MultiresConfig cfg = paper_config(5);
    cfg.num_high_res_paths = 4;
    cfg.normalization_terms = n_norm;
    MultiresViterbiDecoder decoder(trellis, cfg, 1.0, 0.6);
    const auto bits = random_bits(1500, 5);
    ConvolutionalEncoder enc(trellis.spec());
    BpskModulator mod;
    AwgnChannel channel(3.0, 1.0, static_cast<std::uint64_t>(n_norm));
    const auto rx = channel.transmit(mod.modulate(enc.encode(bits)));
    const auto decoded = decoder.decode(rx);
    int errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      errors += decoded[i] != bits[i];
    }
    EXPECT_LT(errors, 20) << "N=" << n_norm;
  }
}

TEST(MultiresConfig, ValidationRejectsBadParameters) {
  const int states = 16;
  MultiresConfig cfg;
  cfg.traceback_depth = 0;
  EXPECT_THROW(cfg.validate(states), std::invalid_argument);
  cfg = {};
  cfg.low_res_bits = 0;
  EXPECT_THROW(cfg.validate(states), std::invalid_argument);
  cfg = {};
  cfg.low_res_bits = 4;
  cfg.high_res_bits = 2;
  EXPECT_THROW(cfg.validate(states), std::invalid_argument);
  cfg = {};
  cfg.num_high_res_paths = 0;
  EXPECT_THROW(cfg.validate(states), std::invalid_argument);
  cfg = {};
  cfg.num_high_res_paths = 17;
  EXPECT_THROW(cfg.validate(states), std::invalid_argument);
  cfg = {};
  cfg.num_high_res_paths = 4;
  cfg.normalization_terms = 5;
  EXPECT_THROW(cfg.validate(states), std::invalid_argument);
}

TEST(MultiresViterbi, RejectsWrongSymbolCount) {
  const Trellis trellis(best_rate_half_code(3));
  MultiresViterbiDecoder decoder(trellis, paper_config(3), 1.0, 0.5);
  const std::vector<double> wrong{0.1};
  EXPECT_THROW(decoder.step(wrong), std::invalid_argument);
}

TEST(MultiresViterbi, ResetRestoresInitialState) {
  const Trellis trellis(best_rate_half_code(3));
  MultiresViterbiDecoder decoder(trellis, paper_config(3), 1.0, 0.5);
  const auto bits = random_bits(100, 1);
  ConvolutionalEncoder enc(trellis.spec());
  BpskModulator mod;
  const auto rx = mod.modulate(enc.encode(bits));
  const auto first = decoder.decode(rx);
  decoder.reset();
  const auto second = decoder.decode(rx);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace metacore::comm
