// Unit and property tests for the single-resolution Viterbi decoder.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "comm/channel.hpp"
#include "comm/convolutional.hpp"
#include "comm/trellis.hpp"
#include "comm/viterbi.hpp"
#include "util/rng.hpp"

namespace metacore {
namespace {

using comm::BpskModulator;
using comm::CodeSpec;
using comm::ConvolutionalEncoder;
using comm::Quantizer;
using comm::QuantizationMethod;
using comm::Trellis;
using comm::ViterbiDecoder;

std::vector<int> random_bits(std::size_t n, std::uint64_t seed) {
  util::Random rng(seed);
  std::vector<int> bits(n);
  for (auto& b : bits) b = rng.bit() ? 1 : 0;
  return bits;
}

/// Modulates encoded symbols without noise.
std::vector<double> noiseless_rx(const CodeSpec& code,
                                 const std::vector<int>& bits) {
  ConvolutionalEncoder enc(code);
  BpskModulator mod(1.0);
  const auto symbols = enc.encode(bits);
  return mod.modulate(symbols);
}

TEST(ViterbiDecoder, DecodesNoiselessStreamExactly) {
  const CodeSpec code = comm::best_rate_half_code(3);
  const Trellis trellis(code);
  ViterbiDecoder decoder(trellis, 15,
                         Quantizer(QuantizationMethod::Hard, 1, 1.0, 0.5));
  const auto bits = random_bits(500, 42);
  const auto rx = noiseless_rx(code, bits);
  const auto decoded = decoder.decode(rx);
  ASSERT_EQ(decoded.size(), bits.size());
  EXPECT_EQ(decoded, bits);
}

TEST(ViterbiDecoder, CorrectsIsolatedSymbolErrors) {
  const CodeSpec code = comm::best_rate_half_code(3);
  const Trellis trellis(code);
  ViterbiDecoder decoder(trellis, 15,
                         Quantizer(QuantizationMethod::Hard, 1, 1.0, 0.5));
  const auto bits = random_bits(200, 7);
  auto rx = noiseless_rx(code, bits);
  // Flip a handful of well-separated channel symbols: free distance of the
  // K=3 (7,5) code is 5, so isolated single-symbol errors must be corrected.
  for (std::size_t i = 20; i + 40 < rx.size(); i += 40) rx[i] = -rx[i];
  const auto decoded = decoder.decode(rx);
  EXPECT_EQ(decoded, bits);
}

TEST(ViterbiDecoder, StreamingMatchesBatchDecode) {
  const CodeSpec code = comm::best_rate_half_code(5);
  const Trellis trellis(code);
  const auto bits = random_bits(300, 99);
  ConvolutionalEncoder enc(code);
  BpskModulator mod;
  comm::AwgnChannel channel(3.0, 1.0, 5);
  const auto rx = channel.transmit(mod.modulate(enc.encode(bits)));

  ViterbiDecoder batch(trellis, 25,
                       Quantizer(QuantizationMethod::Hard, 1, 1.0, 0.5));
  const auto batch_out = batch.decode(rx);

  ViterbiDecoder stream(trellis, 25,
                        Quantizer(QuantizationMethod::Hard, 1, 1.0, 0.5));
  std::vector<int> stream_out;
  for (std::size_t i = 0; i < rx.size(); i += 2) {
    if (auto bit = stream.step({rx.data() + i, 2})) stream_out.push_back(*bit);
  }
  for (int bit : stream.flush()) stream_out.push_back(bit);
  EXPECT_EQ(batch_out, stream_out);
}

TEST(ViterbiDecoder, FlushOnShortStreamReturnsAllBits) {
  const CodeSpec code = comm::best_rate_half_code(3);
  const Trellis trellis(code);
  ViterbiDecoder decoder(trellis, 30,
                         Quantizer(QuantizationMethod::Hard, 1, 1.0, 0.5));
  const std::vector<int> bits{1, 0, 1, 1, 0};
  const auto rx = noiseless_rx(code, bits);
  const auto decoded = decoder.decode(rx);
  EXPECT_EQ(decoded, bits);
}

TEST(ViterbiDecoder, RejectsBadSymbolCount) {
  const Trellis trellis(comm::best_rate_half_code(3));
  ViterbiDecoder decoder(trellis, 10,
                         Quantizer(QuantizationMethod::Hard, 1, 1.0, 0.5));
  const std::vector<double> one_symbol{0.5};
  EXPECT_THROW(decoder.step(one_symbol), std::invalid_argument);
}

TEST(ViterbiDecoder, RejectsNonPositiveTracebackDepth) {
  const Trellis trellis(comm::best_rate_half_code(3));
  EXPECT_THROW(ViterbiDecoder(trellis, 0,
                              Quantizer(QuantizationMethod::Hard, 1, 1.0, 0.5)),
               std::invalid_argument);
}

// Property sweep: decode(encode(x)) == x without noise, across constraint
// lengths, traceback depths, and quantizer configurations.
class ViterbiIdentitySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ViterbiIdentitySweep, NoiselessIdentity) {
  const auto [k, l_mult, bits_q] = GetParam();
  const CodeSpec code = comm::best_rate_half_code(k);
  const Trellis trellis(code);
  const auto method = bits_q == 1 ? QuantizationMethod::Hard
                                  : QuantizationMethod::FixedSoft;
  ViterbiDecoder decoder(trellis, l_mult * k,
                         Quantizer(method, bits_q, 1.0, 0.5));
  const auto bits = random_bits(400, 1000 + static_cast<std::uint64_t>(k));
  const auto rx = noiseless_rx(code, bits);
  EXPECT_EQ(decoder.decode(rx), bits)
      << "K=" << k << " L=" << l_mult * k << " bits=" << bits_q;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, ViterbiIdentitySweep,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 7, 8, 9),
                       ::testing::Values(3, 5, 7),
                       ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace metacore
