// Tests for the reporting helpers and the structural text dumps.
#include <gtest/gtest.h>

#include <sstream>

#include "comm/trellis.hpp"
#include "core/report.hpp"

namespace metacore {
namespace {

search::SearchResult fake_result() {
  search::SearchResult result;
  result.evaluations = 12;
  result.levels_executed = 2;
  auto add = [&](double x, double area, double ber, bool feasible) {
    search::EvaluatedPoint p;
    p.indices = {0};
    p.values = {x};
    p.eval.feasible = feasible;
    p.eval.metrics["area_mm2"] = area;
    p.eval.metrics["ber"] = ber;
    result.history.push_back(p);
  };
  add(1.0, 2.0, 1e-4, true);
  add(2.0, 1.0, 5e-4, true);
  add(3.0, 0.5, 1e-2, true);  // violates the BER bound below
  add(4.0, 9.0, 1e-5, false);
  result.best = result.history[1];
  result.found_feasible = true;
  return result;
}

search::Objective area_objective() {
  search::Objective obj;
  obj.minimize = "area_mm2";
  obj.constraints.push_back(
      {search::Constraint::Kind::UpperBound, "ber", 1e-3});
  return obj;
}

TEST(Summarize, MentionsCountsAndMetrics) {
  const std::string text = core::summarize(fake_result(), area_objective());
  EXPECT_NE(text.find("12 evaluations"), std::string::npos);
  EXPECT_NE(text.find("2 resolution level"), std::string::npos);
  EXPECT_NE(text.find("area_mm2 = 1.000"), std::string::npos);
  EXPECT_NE(text.find("ber = 5.00e-04"), std::string::npos);
}

TEST(Summarize, ReportsInfeasibility) {
  search::SearchResult result = fake_result();
  result.found_feasible = false;
  const std::string text = core::summarize(result, area_objective());
  EXPECT_NE(text.find("no feasible design"), std::string::npos);
}

TEST(RankingTable, OrdersByObjective) {
  const auto table =
      core::ranking_table(fake_result(), area_objective(), {"area_mm2", "ber"}, 3);
  std::ostringstream os;
  table.print_csv(os);
  const std::string csv = os.str();
  // Best feasible-within-constraints first: area 1.0, then 2.0; the
  // BER-violating 0.5 and the infeasible 9.0 rank behind.
  const auto pos1 = csv.find("1.000e+00");
  const auto pos2 = csv.find("2.000e+00");
  ASSERT_NE(pos1, std::string::npos);
  ASSERT_NE(pos2, std::string::npos);
  EXPECT_LT(pos1, pos2);
}

TEST(WriteHistoryCsv, EmitsParametersMetricsAndFeasibility) {
  search::DesignSpace space(
      {{"x", {1.0, 2.0, 3.0, 4.0}, false, search::Correlation::Smooth}});
  std::ostringstream os;
  core::write_history_csv(os, fake_result(), space, {"area_mm2", "ber"});
  const std::string csv = os.str();
  EXPECT_NE(csv.find("x,area_mm2,ber,feasible"), std::string::npos);
  EXPECT_NE(csv.find("2,1,0.0005,1"), std::string::npos);
  EXPECT_NE(csv.find("4,9,1e-05,0"), std::string::npos);
}

TEST(DescribeEncoder, ListsTaps) {
  const std::string text = comm::describe_encoder(comm::best_rate_half_code(3));
  EXPECT_NE(text.find("rate 1/2, K=3"), std::string::npos);
  EXPECT_NE(text.find("output 0 = XOR of taps {input, R1, R2}"),
            std::string::npos);
  EXPECT_NE(text.find("output 1 = XOR of taps {input, R2}"),
            std::string::npos);
}

TEST(TrellisToString, MatchesFigure3Structure) {
  const comm::Trellis trellis(comm::best_rate_half_code(3));
  const std::string text = trellis.to_string();
  // The classic 4-state trellis rows (Figure 3 of the paper).
  EXPECT_NE(text.find("S00:  --0/00--> S00  --1/11--> S10"),
            std::string::npos);
  EXPECT_NE(text.find("S01:  --0/11--> S00  --1/00--> S10"),
            std::string::npos);
  EXPECT_NE(text.find("S11:  --0/10--> S01  --1/01--> S11"),
            std::string::npos);
}

}  // namespace
}  // namespace metacore
