// Google-benchmark microbenchmarks for the cost-evaluation engines: VLIW
// kernel profiling (the Trimaran substitute), behavioral-synthesis
// estimation (the HYPER substitute), and filter design.
#include <benchmark/benchmark.h>

#include "cost/viterbi_cost.hpp"
#include "core/iir_metacore.hpp"
#include "dsp/design.hpp"
#include "synth/area.hpp"
#include "vliw/viterbi_kernel.hpp"

using namespace metacore;

namespace {

void BM_ViterbiKernelProfile(benchmark::State& state) {
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(static_cast<int>(state.range(0)));
  spec.traceback_depth = 5 * spec.code.constraint_length;
  spec.kind = comm::DecoderKind::Multires;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 4;
  const auto kernel = vliw::build_viterbi_kernel(spec);
  const auto machines = vliw::standard_config_family(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vliw::profile_kernel(kernel, machines[3]));
  }
}

void BM_ViterbiCostEvaluation(benchmark::State& state) {
  cost::ViterbiCostQuery query;
  query.spec.code = comm::best_rate_half_code(static_cast<int>(state.range(0)));
  query.spec.traceback_depth = 5 * query.spec.code.constraint_length;
  query.spec.kind = comm::DecoderKind::Soft;
  query.spec.high_res_bits = 3;
  query.throughput_mbps = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost::evaluate_viterbi_cost(query));
  }
}

void BM_IirSynthesisEstimate(benchmark::State& state) {
  synth::IirCostQuery query;
  query.structure = dsp::all_structures()[static_cast<std::size_t>(state.range(0))];
  query.order = 8;
  query.word_bits = 12;
  query.sample_period_us = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::evaluate_iir_cost(query));
  }
}

void BM_EllipticBandpassDesign(benchmark::State& state) {
  const auto req = core::paper_bandpass_requirements(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::design_filter(req.filter));
  }
}

}  // namespace

BENCHMARK(BM_ViterbiKernelProfile)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_ViterbiCostEvaluation)->Arg(3)->Arg(7);
BENCHMARK(BM_IirSynthesisEstimate)->DenseRange(0, 5);
BENCHMARK(BM_EllipticBandpassDesign);

BENCHMARK_MAIN();
