// Google-benchmark microbenchmarks for the cost-evaluation engines: VLIW
// kernel profiling (the Trimaran substitute), behavioral-synthesis
// estimation (the HYPER substitute), filter design, and the exec-pool
// batch-evaluation fan-out. Results are also appended to BENCH_search.json
// for cross-PR perf tracking.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "cost/viterbi_cost.hpp"
#include "core/iir_metacore.hpp"
#include "dsp/design.hpp"
#include "exec/thread_pool.hpp"
#include "synth/area.hpp"
#include "vliw/viterbi_kernel.hpp"

using namespace metacore;

namespace {

void BM_ViterbiKernelProfile(benchmark::State& state) {
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(static_cast<int>(state.range(0)));
  spec.traceback_depth = 5 * spec.code.constraint_length;
  spec.kind = comm::DecoderKind::Multires;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 4;
  const auto kernel = vliw::build_viterbi_kernel(spec);
  const auto machines = vliw::standard_config_family(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vliw::profile_kernel(kernel, machines[3]));
  }
}

void BM_ViterbiCostEvaluation(benchmark::State& state) {
  cost::ViterbiCostQuery query;
  query.spec.code = comm::best_rate_half_code(static_cast<int>(state.range(0)));
  query.spec.traceback_depth = 5 * query.spec.code.constraint_length;
  query.spec.kind = comm::DecoderKind::Soft;
  query.spec.high_res_bits = 3;
  query.throughput_mbps = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost::evaluate_viterbi_cost(query));
  }
}

void BM_IirSynthesisEstimate(benchmark::State& state) {
  synth::IirCostQuery query;
  query.structure = dsp::all_structures()[static_cast<std::size_t>(state.range(0))];
  query.order = 8;
  query.word_bits = 12;
  query.sample_period_us = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::evaluate_iir_cost(query));
  }
}

void BM_EllipticBandpassDesign(benchmark::State& state) {
  const auto req = core::paper_bandpass_requirements(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::design_filter(req.filter));
  }
}

// A search-level batch: fan a level's worth of cost evaluations out across
// the pool, like MultiresolutionSearch does per grid level. state.range(0)
// is the thread count, so one run charts the fan-out scaling curve.
void BM_ParallelCostBatch(benchmark::State& state) {
  exec::ThreadPool::set_global_threads(
      static_cast<std::size_t>(state.range(0)));
  std::vector<cost::ViterbiCostQuery> batch;
  for (int k = 3; k <= 8; ++k) {
    for (int l_mult = 3; l_mult <= 6; ++l_mult) {
      cost::ViterbiCostQuery query;
      query.spec.code = comm::best_rate_half_code(k);
      query.spec.traceback_depth = l_mult * k;
      query.spec.kind = comm::DecoderKind::Soft;
      query.spec.high_res_bits = 3;
      query.throughput_mbps = 1.0;
      batch.push_back(query);
    }
  }
  for (auto _ : state) {
    const auto results = exec::parallel_map(
        batch, [](const cost::ViterbiCostQuery& q) {
          return cost::evaluate_viterbi_cost(q);
        });
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["threads"] = static_cast<double>(state.range(0));
  exec::ThreadPool::set_global_threads(1);
}

/// Forwards to the console reporter while collecting each run into
/// BENCH_search.json records (wall time, items/sec, thread count).
class JsonAppendReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      bench::BenchRecord record;
      record.name = run.benchmark_name();
      // GetAdjustedRealTime is in the run's time unit; normalize to ms.
      record.values["wall_ms"] =
          run.GetAdjustedRealTime() *
          benchmark::GetTimeUnitMultiplier(run.time_unit) / 1e3;
      const auto threads = run.counters.find("threads");
      record.values["threads"] =
          threads != run.counters.end() ? threads->second.value : 1.0;
      if (run.counters.find("items_per_second") != run.counters.end()) {
        record.values["evaluations_per_sec"] =
            run.counters.at("items_per_second").value;
      }
      records_.push_back(std::move(record));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
  ~JsonAppendReporter() override { bench::append_bench_records(records_); }

 private:
  std::vector<bench::BenchRecord> records_;
};

}  // namespace

BENCHMARK(BM_ViterbiKernelProfile)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_ViterbiCostEvaluation)->Arg(3)->Arg(7);
BENCHMARK(BM_IirSynthesisEstimate)->DenseRange(0, 5);
BENCHMARK(BM_EllipticBandpassDesign);
BENCHMARK(BM_ParallelCostBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonAppendReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
