// Evaluation-store persistence throughput: append rate under each
// durability policy, journal-replay (reopen) time, reopen time after 10x
// overwrite churn (dead-record bloat), snapshot-compaction throughput
// (records/sec, bytes before/after), and post-compaction reopen time —
// demonstrating that compaction keeps reopen cost bounded by the live set,
// not the append history. Records land in BENCH_serve.json (override with
// METACORE_BENCH_SERVE_JSON) so the persistence trajectory is tracked
// across PRs.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/store.hpp"
#include "util/crc32c.hpp"
#include "util/table.hpp"

using namespace metacore;

namespace {

std::string bench_serve_json_path() {
  const char* env = std::getenv("METACORE_BENCH_SERVE_JSON");
  return (env != nullptr && env[0] != '\0') ? env : "BENCH_serve.json";
}

std::string store_path() {
  return (std::filesystem::temp_directory_path() / "metacore_bench_store.jsonl")
      .string();
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

search::Evaluation synthetic_eval(int n) {
  search::Evaluation eval;
  eval.feasible = (n % 7) != 0;
  eval.confidence_weight = 1.0 + n * 0.001;
  eval.metrics["area_mm2"] = 0.5 + (n % 97) * 0.01;
  eval.metrics["ber"] = 1e-3 / (1 + n % 13);
  eval.metrics["latency_us"] = 3.0 + (n % 31) * 0.125;
  return eval;
}

void fill(serve::EvaluationStore& store, int records) {
  for (int n = 0; n < records; ++n) {
    store.record("bench-fp", {n / 37, n % 37}, n % 3, synthetic_eval(n));
  }
}

std::size_t file_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::size_t>(size);
}

/// The record frames of the journal at `path` (everything after the header
/// line) — the raw material for simulating overwrite churn across writer
/// epochs.
std::string frames_of(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return text.substr(text.find('\n') + 1);
}

void append_epochs(const std::string& path, const std::string& frames,
                   int epochs) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  for (int e = 0; e < epochs; ++e) out << frames;
}

}  // namespace

int main() {
  bench::print_header("Evaluation-store persistence: append / replay / compact",
                      "the crash-consistent store under Section 6 serving");
  const int records = static_cast<int>(bench::budget(20000));
  const std::string path = store_path();
  std::remove((path + ".tmp").c_str());
  std::vector<bench::BenchRecord> out;
  util::TextTable table(
      {"pass", "records", "wall ms", "records/s", "file KiB"});

  // 1) Append throughput per durability policy (the fsync policies are
  //    excluded from the default run: their cost is the device's, not the
  //    code's).
  for (const char* policy : {"none", "flush"}) {
    std::remove(path.c_str());
    serve::StoreConfig config;
    config.durability = robust::DurabilityConfig::parse(policy);
    const auto t0 = std::chrono::steady_clock::now();
    {
      serve::EvaluationStore store(path, config);
      fill(store, records);
    }
    const double wall = ms_since(t0);
    bench::BenchRecord rec;
    rec.name = "store_append";
    rec.labels["durability"] = policy;
    rec.values["records"] = records;
    rec.values["wall_ms"] = wall;
    rec.values["records_per_sec"] = records / (wall / 1000.0);
    rec.values["file_bytes"] = static_cast<double>(file_bytes(path));
    out.push_back(rec);
    table.add_row({std::string("append (") + policy + ")",
                   std::to_string(records), util::format_double(wall, 1),
                   util::format_double(records / (wall / 1000.0), 0),
                   util::format_double(file_bytes(path) / 1024.0, 0)});
  }

  // 2) Journal replay: reopen the flush-policy journal written above.
  {
    const auto t0 = std::chrono::steady_clock::now();
    serve::EvaluationStore store(path);
    const double wall = ms_since(t0);
    bench::BenchRecord rec;
    rec.name = "store_replay";
    rec.values["records"] = records;
    rec.values["wall_ms"] = wall;
    rec.values["records_per_sec"] = records / (wall / 1000.0);
    rec.values["live_entries"] = static_cast<double>(store.size());
    out.push_back(rec);
    table.add_row({"replay (clean)", std::to_string(records),
                   util::format_double(wall, 1),
                   util::format_double(records / (wall / 1000.0), 0),
                   util::format_double(file_bytes(path) / 1024.0, 0)});
  }

  // 3) 10x overwrite churn: every record rewritten 10 times across writer
  //    epochs (appending the same frames 9 more times, as racing epochs
  //    would), then one reopen with the default compaction ratio — reopen
  //    cost must end bounded by the live set, not the churn history.
  append_epochs(path, frames_of(path), 9);
  const std::size_t churned_bytes = file_bytes(path);
  {
    const auto t0 = std::chrono::steady_clock::now();
    serve::EvaluationStore store(path);  // dead ratio 0.9: compacts at open
    const double wall = ms_since(t0);
    const auto stats = store.stats();
    bench::BenchRecord rec;
    rec.name = "store_churn_reopen";
    rec.values["journal_records"] = static_cast<double>(records) * 10.0;
    rec.values["live_entries"] = static_cast<double>(store.size());
    rec.values["wall_ms"] = wall;
    rec.values["bytes_before"] =
        static_cast<double>(stats.compaction_bytes_before);
    rec.values["bytes_after"] =
        static_cast<double>(stats.compaction_bytes_after);
    rec.values["compactions"] = static_cast<double>(stats.compactions);
    out.push_back(rec);
    table.add_row({"reopen (10x churn + compact)",
                   std::to_string(records * 10),
                   util::format_double(wall, 1),
                   util::format_double(records * 10 / (wall / 1000.0), 0),
                   util::format_double(churned_bytes / 1024.0, 0)});
  }

  // 4) Post-compaction reopen: the bounded steady state.
  {
    const auto t0 = std::chrono::steady_clock::now();
    serve::EvaluationStore store(path);
    const double wall = ms_since(t0);
    bench::BenchRecord rec;
    rec.name = "store_compacted_reopen";
    rec.values["records"] = records;
    rec.values["wall_ms"] = wall;
    rec.values["records_per_sec"] = records / (wall / 1000.0);
    rec.values["file_bytes"] = static_cast<double>(file_bytes(path));
    out.push_back(rec);
    table.add_row({"reopen (compacted)", std::to_string(records),
                   util::format_double(wall, 1),
                   util::format_double(records / (wall / 1000.0), 0),
                   util::format_double(file_bytes(path) / 1024.0, 0)});
  }

  // 5) Explicit compact() throughput on a half-dead journal (ratio
  //    trigger disabled so the bloat survives the open).
  append_epochs(path, frames_of(path), 1);
  {
    serve::StoreConfig config;
    config.auto_compact_dead_ratio = 0.0;
    serve::EvaluationStore store(path, config);
    const std::size_t before = file_bytes(path);
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t reclaimed = store.compact();
    const double wall = ms_since(t0);
    bench::BenchRecord rec;
    rec.name = "store_compact";
    rec.values["live_entries"] = static_cast<double>(store.size());
    rec.values["wall_ms"] = wall;
    rec.values["records_per_sec"] = store.size() / (wall / 1000.0);
    rec.values["bytes_before"] = static_cast<double>(before);
    rec.values["bytes_after"] = static_cast<double>(file_bytes(path));
    rec.values["bytes_reclaimed"] = static_cast<double>(reclaimed);
    out.push_back(rec);
    table.add_row({"compact()", std::to_string(store.size()),
                   util::format_double(wall, 1),
                   util::format_double(store.size() / (wall / 1000.0), 0),
                   util::format_double(file_bytes(path) / 1024.0, 0)});
  }

  // 6) CRC32C backend throughput: the checksum under every journal frame
  //    and every MCB1 binary wire frame. Both tiers are bit-identical
  //    (util_crc32c_test pins that); this records what the SSE4.2
  //    dispatch buys over the portable slice-by-8 walk.
  {
    std::string payload(1 << 20, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<char>((i * 2654435761u) >> 13);
    }
    const int reps = static_cast<int>(bench::budget(400));
    std::vector<std::pair<std::string, std::string>> tiers = {
        {"sw", "sw-slice8"}};
    if (util::crc32c_hw_available()) tiers.emplace_back("hw", "hw-sse42");
    for (const auto& [force, name] : tiers) {
      util::crc32c_force_backend(force);
      std::uint32_t sink = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) {
        sink ^= util::crc32c(payload.data(), payload.size());
      }
      const double wall = ms_since(t0);
      const double mb = reps * (payload.size() / 1e6);
      bench::BenchRecord rec;
      rec.name = "store_crc32c";
      rec.labels["backend"] = name;
      rec.values["block_bytes"] = static_cast<double>(payload.size());
      rec.values["reps"] = reps;
      rec.values["wall_ms"] = wall;
      rec.values["mb_per_sec"] = mb / (wall / 1000.0);
      rec.values["checksum"] = static_cast<double>(sink);
      out.push_back(rec);
      // The throughput column carries MB/s for this pass.
      table.add_row({"crc32c (" + name + ")", std::to_string(reps),
                     util::format_double(wall, 1),
                     util::format_double(mb / (wall / 1000.0), 0), "-"});
    }
    util::crc32c_force_backend("auto");
  }

  table.print(std::cout);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  bench::append_bench_records(out, bench_serve_json_path());
  std::cout << "bench records appended to " << bench_serve_json_path()
            << "\n";
  return 0;
}
