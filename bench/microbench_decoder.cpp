// Google-benchmark microbenchmarks for the decoder kernels: decode
// throughput (bits/second) of hard, soft, and multiresolution Viterbi
// across constraint lengths — the quantities the VLIW cost engine models.
//
// Each decoder kind is measured through both streaming APIs: the per-step
// virtual step() loop and the batched decode_block() kernel (flat trellis
// view, table-lookup metrics, renorm tracked in-loop). After the
// google-benchmark pass, a manual timing pass appends machine-readable
// block-vs-step records (bits/s per decoder kind x K, plus the speedup) to
// BENCH_decoder.json (override the path with METACORE_BENCH_DECODER_JSON;
// METACORE_QUICK=1 shrinks the bit budget for smoke runs).
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/ber.hpp"
#include "comm/channel.hpp"
#include "comm/simd/acs_kernel.hpp"
#include "util/rng.hpp"

using namespace metacore;

namespace {

struct Workload {
  comm::Trellis trellis;
  std::vector<double> rx;
  double sigma;

  Workload(const comm::DecoderSpec& spec, std::size_t bits)
      : trellis(spec.code), sigma(0.6) {
    util::Random rng(99);
    comm::ConvolutionalEncoder encoder(spec.code);
    comm::BpskModulator mod;
    comm::AwgnChannel channel(2.0, 1.0, 7);
    sigma = channel.noise_sigma();
    std::vector<int> data(bits);
    for (auto& b : data) b = rng.bit() ? 1 : 0;
    rx = channel.transmit(mod.modulate(encoder.encode(data)));
  }
};

comm::DecoderSpec make_spec(comm::DecoderKind kind, int k) {
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(k);
  spec.traceback_depth = 5 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = std::min(8, spec.code.num_states());
  return spec;
}

constexpr std::size_t kBenchBits = 4'096;

/// Block API: one decode_block call over the whole stream (what
/// Decoder::decode and the BER pipeline do).
void run_decoder_block(benchmark::State& state, comm::DecoderKind kind) {
  const int k = static_cast<int>(state.range(0));
  const comm::DecoderSpec spec = make_spec(kind, k);
  const Workload workload(spec, kBenchBits);
  auto decoder = spec.make_decoder(workload.trellis, 1.0, workload.sigma);
  std::vector<int> out(kBenchBits);
  for (auto _ : state) {
    decoder->reset();
    benchmark::DoNotOptimize(decoder->decode_block(workload.rx, out));
  }
  state.SetItemsProcessed(state.iterations() * kBenchBits);
}

/// Step API: the historical per-trellis-step virtual-dispatch loop, kept as
/// the comparison baseline for the batched kernels.
void run_decoder_step(benchmark::State& state, comm::DecoderKind kind) {
  const int k = static_cast<int>(state.range(0));
  const comm::DecoderSpec spec = make_spec(kind, k);
  const Workload workload(spec, kBenchBits);
  auto decoder = spec.make_decoder(workload.trellis, 1.0, workload.sigma);
  const auto n = static_cast<std::size_t>(workload.trellis.symbols_per_step());
  std::vector<int> out(kBenchBits);
  for (auto _ : state) {
    decoder->reset();
    std::size_t written = 0;
    for (std::size_t i = 0; i < workload.rx.size(); i += n) {
      if (auto bit = decoder->step({workload.rx.data() + i, n})) {
        out[written++] = *bit;
      }
    }
    benchmark::DoNotOptimize(written);
  }
  state.SetItemsProcessed(state.iterations() * kBenchBits);
}

void BM_HardDecode(benchmark::State& state) {
  run_decoder_block(state, comm::DecoderKind::Hard);
}
void BM_SoftDecode(benchmark::State& state) {
  run_decoder_block(state, comm::DecoderKind::Soft);
}
void BM_MultiresDecode(benchmark::State& state) {
  run_decoder_block(state, comm::DecoderKind::Multires);
}
void BM_HardDecodeStep(benchmark::State& state) {
  run_decoder_step(state, comm::DecoderKind::Hard);
}
void BM_SoftDecodeStep(benchmark::State& state) {
  run_decoder_step(state, comm::DecoderKind::Soft);
}
void BM_MultiresDecodeStep(benchmark::State& state) {
  run_decoder_step(state, comm::DecoderKind::Multires);
}

BENCHMARK(BM_HardDecode)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_SoftDecode)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_MultiresDecode)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_HardDecodeStep)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_SoftDecodeStep)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_MultiresDecodeStep)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

/// Decodes `total_bits` through one API and returns bits/second. Both APIs
/// decode the same rx stream, so the comparison isolates per-step virtual
/// dispatch + scratch churn vs the batched kernel.
double time_api(const comm::DecoderSpec& spec, const Workload& workload,
                std::size_t total_bits, bool block_api) {
  auto decoder = spec.make_decoder(workload.trellis, 1.0, workload.sigma);
  const auto n = static_cast<std::size_t>(workload.trellis.symbols_per_step());
  std::vector<int> out(kBenchBits);
  std::size_t decoded = 0;
  const auto start = std::chrono::steady_clock::now();
  while (decoded < total_bits) {
    decoder->reset();
    if (block_api) {
      benchmark::DoNotOptimize(decoder->decode_block(workload.rx, out));
    } else {
      std::size_t written = 0;
      for (std::size_t i = 0; i < workload.rx.size(); i += n) {
        if (auto bit = decoder->step({workload.rx.data() + i, n})) {
          out[written++] = *bit;
        }
      }
      benchmark::DoNotOptimize(written);
    }
    decoded += kBenchBits;
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return static_cast<double>(decoded) / seconds;
}

/// The structured block-vs-step pass appended to BENCH_decoder.json.
void append_block_vs_step_records() {
  const std::size_t total_bits = bench::quick_mode() ? 16'384 : 262'144;
  std::vector<bench::BenchRecord> records;
  const comm::DecoderKind kinds[] = {comm::DecoderKind::Hard,
                                     comm::DecoderKind::Soft,
                                     comm::DecoderKind::Multires};
  std::cout << "\nblock-vs-step comparison (" << total_bits
            << " bits per cell):\n";
  for (const auto kind : kinds) {
    for (const int k : {3, 5, 7, 9}) {
      const comm::DecoderSpec spec = make_spec(kind, k);
      const Workload workload(spec, kBenchBits);
      const double step_bps = time_api(spec, workload, total_bits, false);
      const double block_bps = time_api(spec, workload, total_bits, true);

      bench::BenchRecord record;
      record.name = "decoder_block_vs_step";
      record.labels["kind"] = comm::to_string(kind);
      record.values["constraint_length"] = static_cast<double>(k);
      record.values["bits"] = static_cast<double>(total_bits);
      record.values["step_bits_per_second"] = step_bps;
      record.values["block_bits_per_second"] = block_bps;
      record.values["block_vs_step_speedup"] = block_bps / step_bps;
      records.push_back(std::move(record));

      std::cout << "  " << comm::to_string(kind) << " K=" << k << ": step "
                << static_cast<std::uint64_t>(step_bps) << " b/s, block "
                << static_cast<std::uint64_t>(block_bps) << " b/s, speedup "
                << block_bps / step_bps << "x\n";
    }
  }
  bench::append_bench_records(records, bench::bench_decoder_json_path());
  std::cout << "bench records appended to " << bench::bench_decoder_json_path()
            << "\n";
}

/// Restores the dispatched ISA on scope exit.
class IsaGuard {
 public:
  IsaGuard() : saved_(comm::simd::dispatched_isa()) {}
  ~IsaGuard() { comm::simd::force_isa(saved_); }

 private:
  comm::simd::Isa saved_;
};

std::vector<comm::simd::Isa> available_isas() {
  std::vector<comm::simd::Isa> isas;
  for (const auto isa : {comm::simd::Isa::Scalar, comm::simd::Isa::Sse4,
                         comm::simd::Isa::Avx2, comm::simd::Isa::Avx512}) {
    if (comm::simd::isa_available(isa)) isas.push_back(isa);
  }
  return isas;
}

/// Registers one block-API benchmark per decoder kind for each kernel tier
/// available on this machine (BM_<Kind>DecodeSimd_<isa>/K); the lambda
/// forces the tier for the duration of the run.
void register_simd_benchmarks() {
  struct KindEntry {
    comm::DecoderKind kind;
    const char* name;
  };
  const KindEntry kinds[] = {{comm::DecoderKind::Hard, "Hard"},
                             {comm::DecoderKind::Soft, "Soft"},
                             {comm::DecoderKind::Multires, "Multires"}};
  for (const auto isa : available_isas()) {
    for (const auto& entry : kinds) {
      const std::string name = std::string("BM_") + entry.name +
                               "DecodeSimd_" + comm::simd::to_string(isa);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [kind = entry.kind, isa](benchmark::State& state) {
            IsaGuard guard;
            comm::simd::force_isa(isa);
            run_decoder_block(state, kind);
          })
          ->Arg(7);
    }
  }
}

/// The structured simd-vs-scalar pass appended to BENCH_decoder.json: block
/// decode throughput per (kind, K, kernel tier) and the speedup over the
/// scalar reference kernel.
void append_simd_vs_scalar_records() {
  const std::size_t total_bits = bench::quick_mode() ? 16'384 : 262'144;
  const auto isas = available_isas();
  std::vector<bench::BenchRecord> records;
  const comm::DecoderKind kinds[] = {comm::DecoderKind::Hard,
                                     comm::DecoderKind::Soft,
                                     comm::DecoderKind::Multires};
  IsaGuard guard;
  std::cout << "\nsimd-vs-scalar comparison (" << total_bits
            << " bits per cell):\n";
  for (const auto kind : kinds) {
    for (const int k : {3, 5, 7, 9}) {
      const comm::DecoderSpec spec = make_spec(kind, k);
      const Workload workload(spec, kBenchBits);
      double scalar_bps = 0.0;
      for (const auto isa : isas) {
        comm::simd::force_isa(isa);
        const double bps = time_api(spec, workload, total_bits, true);
        if (isa == comm::simd::Isa::Scalar) scalar_bps = bps;

        bench::BenchRecord record;
        record.name = "decoder_simd_vs_scalar";
        record.labels["kind"] = comm::to_string(kind);
        record.labels["isa"] = comm::simd::to_string(isa);
        record.values["constraint_length"] = static_cast<double>(k);
        record.values["bits"] = static_cast<double>(total_bits);
        record.values["bits_per_second"] = bps;
        record.values["speedup_vs_scalar"] = bps / scalar_bps;
        records.push_back(std::move(record));

        std::cout << "  " << comm::to_string(kind) << " K=" << k << " "
                  << comm::simd::to_string(isa) << ": "
                  << static_cast<std::uint64_t>(bps) << " b/s, "
                  << bps / scalar_bps << "x scalar\n";
      }
    }
  }
  bench::append_bench_records(records, bench::bench_decoder_json_path());
  std::cout << "bench records appended to " << bench::bench_decoder_json_path()
            << "\n";
}

/// Frame-parallel API: `lanes` copies of the workload decode in lock-step
/// through one FrameDecoder; throughput counts every lane's bits.
double time_frames(const comm::DecoderSpec& spec, const Workload& workload,
                   std::size_t total_bits, std::size_t lanes) {
  auto decoder =
      spec.make_frame_decoder(workload.trellis, 1.0, workload.sigma, lanes);
  std::vector<int> out(lanes * kBenchBits);
  std::vector<const double*> rx_ptrs(lanes, workload.rx.data());
  std::vector<int*> out_ptrs(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    out_ptrs[l] = out.data() + l * kBenchBits;
  }
  std::size_t decoded = 0;
  const auto start = std::chrono::steady_clock::now();
  while (decoded < total_bits) {
    decoder->reset();
    benchmark::DoNotOptimize(
        decoder->decode_chunk(rx_ptrs.data(), kBenchBits, out_ptrs.data()));
    decoded += lanes * kBenchBits;
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return static_cast<double>(decoded) / seconds;
}

/// Registers one frame-parallel benchmark per decoder kind and kernel tier
/// (BM_<Kind>DecodeFrames_<isa>/K) at the tier's natural lane count.
void register_frame_benchmarks() {
  struct KindEntry {
    comm::DecoderKind kind;
    const char* name;
  };
  const KindEntry kinds[] = {{comm::DecoderKind::Hard, "Hard"},
                             {comm::DecoderKind::Soft, "Soft"},
                             {comm::DecoderKind::Multires, "Multires"}};
  for (const auto isa : available_isas()) {
    for (const auto& entry : kinds) {
      const std::string name = std::string("BM_") + entry.name +
                               "DecodeFrames_" + comm::simd::to_string(isa);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [kind = entry.kind, isa](benchmark::State& state) {
            IsaGuard guard;
            comm::simd::force_isa(isa);
            const int k = static_cast<int>(state.range(0));
            const comm::DecoderSpec spec = make_spec(kind, k);
            const Workload workload(spec, kBenchBits);
            const std::size_t lanes = comm::simd::natural_frame_lanes(isa);
            auto decoder = spec.make_frame_decoder(workload.trellis, 1.0,
                                                   workload.sigma, lanes);
            std::vector<int> out(lanes * kBenchBits);
            std::vector<const double*> rx_ptrs(lanes, workload.rx.data());
            std::vector<int*> out_ptrs(lanes);
            for (std::size_t l = 0; l < lanes; ++l) {
              out_ptrs[l] = out.data() + l * kBenchBits;
            }
            for (auto _ : state) {
              decoder->reset();
              benchmark::DoNotOptimize(decoder->decode_chunk(
                  rx_ptrs.data(), kBenchBits, out_ptrs.data()));
            }
            state.SetItemsProcessed(state.iterations() * kBenchBits * lanes);
          })
          ->Arg(7);
    }
  }
}

/// The structured frame-parallel pass appended to BENCH_decoder.json:
/// lock-step lane decoding vs decoding the same frames sequentially through
/// the single-frame block API, per (kind, K, kernel tier, lane count). Both
/// sides are timed in the same session on the same workload, so the speedup
/// column is a direct apples-to-apples ratio.
void append_frame_parallel_records() {
  const std::size_t total_bits = bench::quick_mode() ? 16'384 : 262'144;
  const auto isas = available_isas();
  std::vector<bench::BenchRecord> records;
  const comm::DecoderKind kinds[] = {comm::DecoderKind::Hard,
                                     comm::DecoderKind::Soft,
                                     comm::DecoderKind::Multires};
  IsaGuard guard;
  std::cout << "\nframe-parallel vs sequential comparison (" << total_bits
            << " bits per cell):\n";
  for (const auto kind : kinds) {
    for (const int k : {3, 5, 7, 9}) {
      const comm::DecoderSpec spec = make_spec(kind, k);
      const Workload workload(spec, kBenchBits);
      for (const auto isa : isas) {
        comm::simd::force_isa(isa);
        const double sequential_bps = time_api(spec, workload, total_bits, true);
        const std::size_t natural = comm::simd::natural_frame_lanes(isa);
        std::vector<std::size_t> lane_counts{natural};
        if (natural != 4) lane_counts.insert(lane_counts.begin(), 4);
        for (const std::size_t lanes : lane_counts) {
          const double frame_bps = time_frames(spec, workload, total_bits, lanes);

          bench::BenchRecord record;
          record.name = "decoder_frame_parallel";
          record.labels["kind"] = comm::to_string(kind);
          record.labels["isa"] = comm::simd::to_string(isa);
          record.values["constraint_length"] = static_cast<double>(k);
          record.values["lanes"] = static_cast<double>(lanes);
          record.values["bits"] = static_cast<double>(total_bits);
          record.values["sequential_bits_per_second"] = sequential_bps;
          record.values["frame_parallel_bits_per_second"] = frame_bps;
          record.values["frames_vs_sequential_speedup"] =
              frame_bps / sequential_bps;
          records.push_back(std::move(record));

          std::cout << "  " << comm::to_string(kind) << " K=" << k << " "
                    << comm::simd::to_string(isa) << " lanes=" << lanes
                    << ": seq " << static_cast<std::uint64_t>(sequential_bps)
                    << " b/s, frames "
                    << static_cast<std::uint64_t>(frame_bps) << " b/s, "
                    << frame_bps / sequential_bps << "x\n";
        }
      }
    }
  }
  bench::append_bench_records(records, bench::bench_decoder_json_path());
  std::cout << "bench records appended to " << bench::bench_decoder_json_path()
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  register_simd_benchmarks();
  register_frame_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  append_block_vs_step_records();
  append_simd_vs_scalar_records();
  append_frame_parallel_records();
  return 0;
}
