// Google-benchmark microbenchmarks for the decoder kernels: decode
// throughput (bits/second) of hard, soft, and multiresolution Viterbi
// across constraint lengths — the quantities the VLIW cost engine models.
#include <benchmark/benchmark.h>

#include "comm/ber.hpp"
#include "comm/channel.hpp"
#include "util/rng.hpp"

using namespace metacore;

namespace {

struct Workload {
  comm::Trellis trellis;
  std::vector<double> rx;
  double sigma;

  Workload(const comm::DecoderSpec& spec, std::size_t bits)
      : trellis(spec.code), sigma(0.6) {
    util::Random rng(99);
    comm::ConvolutionalEncoder encoder(spec.code);
    comm::BpskModulator mod;
    comm::AwgnChannel channel(2.0, 1.0, 7);
    sigma = channel.noise_sigma();
    std::vector<int> data(bits);
    for (auto& b : data) b = rng.bit() ? 1 : 0;
    rx = channel.transmit(mod.modulate(encoder.encode(data)));
  }
};

comm::DecoderSpec make_spec(comm::DecoderKind kind, int k) {
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(k);
  spec.traceback_depth = 5 * k;
  spec.kind = kind;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = std::min(8, spec.code.num_states());
  return spec;
}

void run_decoder(benchmark::State& state, comm::DecoderKind kind) {
  const int k = static_cast<int>(state.range(0));
  const comm::DecoderSpec spec = make_spec(kind, k);
  const Workload workload(spec, 4'096);
  auto decoder = spec.make_decoder(workload.trellis, 1.0, workload.sigma);
  for (auto _ : state) {
    decoder->reset();
    benchmark::DoNotOptimize(decoder->decode(workload.rx));
  }
  state.SetItemsProcessed(state.iterations() * 4'096);
}

void BM_HardDecode(benchmark::State& state) {
  run_decoder(state, comm::DecoderKind::Hard);
}
void BM_SoftDecode(benchmark::State& state) {
  run_decoder(state, comm::DecoderKind::Soft);
}
void BM_MultiresDecode(benchmark::State& state) {
  run_decoder(state, comm::DecoderKind::Multires);
}

}  // namespace

BENCHMARK(BM_HardDecode)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_SoftDecode)->Arg(3)->Arg(5)->Arg(7)->Arg(9);
BENCHMARK(BM_MultiresDecode)->Arg(3)->Arg(5)->Arg(7)->Arg(9);

BENCHMARK_MAIN();
