// Reproduces Figure 5: the transfer function magnitude of an elliptic IIR
// filter. The harness prints the frequency response of the paper's
// Section 5.3 bandpass design plus a representative elliptic lowpass (the
// literal subject of Figure 5), as (omega/pi, |H| dB) series.
#include <iostream>

#include "bench_common.hpp"
#include "core/iir_metacore.hpp"
#include "dsp/design.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Figure 5: elliptic IIR transfer functions", "Figure 5");

  // The lowpass of Figure 5 (representative spec: the paper plots a typical
  // elliptic lowpass without giving numbers).
  dsp::FilterSpec lp;
  lp.band = dsp::BandType::Lowpass;
  lp.family = dsp::FilterFamily::Elliptic;
  lp.pass_hi = 0.3;
  lp.stop_hi = 0.36;
  lp.passband_ripple_db = 0.5;
  lp.stopband_atten_db = 40.0;
  const auto lowpass = dsp::design_filter(lp);

  // The Section 5.3 bandpass driving Table 4.
  const auto req = core::paper_bandpass_requirements(1.0);
  const auto bandpass = dsp::design_filter(req.filter);

  std::cout << "Elliptic lowpass: prototype order " << lowpass.prototype_order
            << ", digital order " << lowpass.tf.order() << "\n";
  std::cout << "Elliptic bandpass (Sec. 5.3): prototype order "
            << bandpass.prototype_order << ", digital order "
            << bandpass.tf.order() << "\n\n";

  util::TextTable table({"omega/pi", "lowpass |H| dB", "bandpass |H| dB"});
  for (int i = 0; i <= 50; ++i) {
    const double f = i / 50.0;
    const double w = f * M_PI;
    table.add_row({util::format_double(f, 2),
                   util::format_double(lowpass.tf.magnitude_db(w), 1),
                   util::format_double(bandpass.tf.magnitude_db(w), 1)});
  }
  table.print(std::cout);

  const auto metrics =
      dsp::measure_bandpass(bandpass.tf, req.filter.pass_lo, req.filter.pass_hi,
                            req.filter.stop_lo, req.filter.stop_hi, 2048);
  std::cout << "\nBandpass characteristics vs spec:\n"
            << "  passband ripple: "
            << util::format_double(metrics.passband_ripple_db, 4) << " dB (spec "
            << util::format_double(req.filter.passband_ripple_db, 4) << ")\n"
            << "  stopband gain:   "
            << util::format_double(metrics.max_stopband_gain_db, 2)
            << " dB (spec -" << util::format_double(req.filter.stopband_atten_db, 2)
            << ")\n"
            << "  3-dB bandwidth:  "
            << util::format_double(metrics.bandwidth_3db / M_PI, 4)
            << " (omega/pi)\n";
  std::cout << "Shape check: equiripple passband, equiripple stopband floor,\n"
               "steep elliptic transitions on both designs.\n";
  return 0;
}
