// Ablation for the Section 4.3 technology-scaling model: the Table 1
// instances priced across feature sizes. Area must follow the paper's
// quadratic lambda = (alpha/0.35)^2 (modulated by the clock speed-up
// changing the cheapest machine/replication choice), and the required
// core count must fall as clocks rise.
#include <iostream>

#include "bench_common.hpp"
#include "comm/ber.hpp"
#include "cost/viterbi_cost.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Ablation: area vs feature size (lambda scaling)",
                      "Section 4.3");

  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(7);
  spec.traceback_depth = 35;
  spec.kind = comm::DecoderKind::Multires;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 4;

  util::TextTable table({"feature um", "lambda", "area mm^2", "cores",
                         "achievable MHz", "machine"});
  double area_035 = 0.0;
  for (double feature : {0.35, 0.25, 0.18, 0.13}) {
    cost::ViterbiCostQuery query;
    query.spec = spec;
    query.throughput_mbps = 1.0;
    query.tech.feature_um = feature;
    const auto result = cost::evaluate_viterbi_cost(query);
    if (feature == 0.35) area_035 = result.area_mm2;
    table.add_row({util::format_double(feature, 2),
                   util::format_double(query.tech.area_lambda(), 3),
                   result.feasible ? util::format_double(result.area_mm2, 3)
                                   : "infeasible",
                   std::to_string(result.cores),
                   util::format_double(result.achievable_clock_mhz, 0),
                   result.machine.label()});
  }
  table.print(std::cout);
  std::cout << "\nAt 0.13 um the same decoder costs "
            << util::format_percent(
                   1.0 - (area_035 > 0.0
                              ? cost::evaluate_viterbi_cost([&] {
                                  cost::ViterbiCostQuery q;
                                  q.spec = spec;
                                  q.throughput_mbps = 1.0;
                                  q.tech.feature_um = 0.13;
                                  return q;
                                }()).area_mm2 / area_035
                              : 0.0),
                   0)
            << " less area than at 0.35 um — the quadratic lambda scaling\n"
               "partially offset by cheaper machine choices at faster clocks.\n";
  return 0;
}
