// Reproduces Figure 8: BER vs Es/N0 for hard, soft (3-bit adaptive), and
// multiresolution decoding (M = 4 and M = 8) at K = 5, L = 5K, R1 = 1,
// R2 = 3.
//
// Paper headline: averaged over the sweep, M=4 improves BER by ~64% and
// M=8 by ~82% relative to pure hard decision.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "comm/ber.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header(
      "Figure 8: hard vs multiresolution vs soft decoding (K=5)", "Figure 8");

  comm::DecoderSpec base;
  base.code = comm::best_rate_half_code(5);
  base.traceback_depth = 25;
  base.low_res_bits = 1;
  base.high_res_bits = 3;
  base.quantization = comm::QuantizationMethod::AdaptiveSoft;

  comm::DecoderSpec hard = base;
  hard.kind = comm::DecoderKind::Hard;
  comm::DecoderSpec m4 = base;
  m4.kind = comm::DecoderKind::Multires;
  m4.num_high_res_paths = 4;
  comm::DecoderSpec m8 = m4;
  m8.num_high_res_paths = 8;
  comm::DecoderSpec soft = base;
  soft.kind = comm::DecoderKind::Soft;

  comm::BerRunConfig cfg;
  cfg.max_bits = bench::budget(1'000'000);
  cfg.min_bits = cfg.max_bits / 5;
  cfg.max_errors = 3'000;

  const std::vector<double> esn0{0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  util::TextTable table(
      {"Es/N0 dB", "hard", "multires M=4", "multires M=8", "soft (3-bit)"});
  double improvement_m4 = 0.0, improvement_m8 = 0.0;
  int counted = 0;
  for (double snr : esn0) {
    const double ber_hard = comm::measure_ber(hard, snr, cfg).ber();
    const double ber_m4 = comm::measure_ber(m4, snr, cfg).ber();
    const double ber_m8 = comm::measure_ber(m8, snr, cfg).ber();
    const double ber_soft = comm::measure_ber(soft, snr, cfg).ber();
    table.add_row({util::format_double(snr, 1),
                   util::format_scientific(ber_hard, 2),
                   util::format_scientific(ber_m4, 2),
                   util::format_scientific(ber_m8, 2),
                   util::format_scientific(ber_soft, 2)});
    if (ber_hard > 0.0 && ber_m4 > 0.0 && ber_m8 > 0.0) {
      improvement_m4 += 1.0 - ber_m4 / ber_hard;
      improvement_m8 += 1.0 - ber_m8 / ber_hard;
      ++counted;
    }
  }
  table.print(std::cout);
  if (counted > 0) {
    std::cout << "\nAverage BER improvement over hard decision:\n"
              << "  M=4: " << util::format_percent(improvement_m4 / counted, 1)
              << "   (paper: 64%)\n"
              << "  M=8: " << util::format_percent(improvement_m8 / counted, 1)
              << "   (paper: 82%)\n";
  }
  std::cout << "Shape check: hard > M=4 > M=8 > soft at every SNR point.\n";
  return 0;
}
