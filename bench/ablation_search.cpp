// Ablation for the Section 4.4 claims about the multiresolution search:
//
//  1. Greedy multiresolution search vs exhaustive enumeration on a reduced
//     Viterbi space: solution quality vs evaluation count ("the optimality
//     of the search ... can be increased ... at the cost of significantly
//     longer runtimes").
//  2. The value of the Bayesian BER guard: search with and without the
//     probabilistic-metric pruning.
#include <iostream>

#include "bench_common.hpp"
#include "core/viterbi_metacore.hpp"
#include "search/baselines.hpp"
#include "util/table.hpp"

using namespace metacore;

namespace {

/// A reduced Viterbi design space small enough for exhaustive search:
/// K x L_mult x R1 x M_frac with everything else fixed.
search::DesignSpace reduced_space() {
  using search::Correlation;
  using search::ParameterDef;
  std::vector<ParameterDef> params(8);
  params[0] = {"K", {3, 5, 7}, false, Correlation::Monotonic};
  params[1] = {"L_mult", {3, 5}, false, Correlation::Smooth};
  params[2] = {"G", {0}, false, Correlation::NonCorrelated};
  params[3] = {"R1", {1, 2, 3}, false, Correlation::Monotonic};
  params[4] = {"R2", {3}, false, Correlation::Monotonic};
  params[5] = {"Q", {1}, false, Correlation::NonCorrelated};
  params[6] = {"N", {1}, false, Correlation::Smooth};
  params[7] = {"M_frac", {0.0, 0.25}, false, Correlation::Monotonic};
  return search::DesignSpace(std::move(params));
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: greedy multiresolution search vs exhaustive baseline",
      "Section 4.4");

  core::ViterbiRequirements req;
  req.target_ber = 1e-3;
  req.esn0_db = 1.5;
  req.throughput_mbps = 1.0;
  comm::BerRunConfig ber;
  ber.max_bits = bench::budget(60'000);
  ber.min_bits = ber.max_bits / 4;
  ber.max_errors = 300;
  core::ViterbiMetaCore metacore(req, ber);

  const auto space = reduced_space();
  const auto objective = metacore.objective();
  const auto evaluate = metacore.evaluator();

  // Exhaustive baseline at fidelity 1 (36 points).
  const auto exhaustive =
      search::exhaustive_search(space, objective, evaluate, 1);

  util::TextTable table(
      {"method", "evaluations", "best area mm^2", "best BER", "feasible"});
  auto add = [&](const std::string& name, const search::SearchResult& r) {
    table.add_row(
        {name, std::to_string(r.evaluations),
         r.found_feasible ? util::format_double(r.best.eval.metric("area_mm2"), 2)
                          : "-",
         r.found_feasible
             ? util::format_scientific(r.best.eval.metric("ber"), 1)
             : "-",
         r.found_feasible ? "yes" : "no"});
  };
  add("exhaustive (fidelity 1)", exhaustive);

  // Multiresolution greedy with the Bayesian BER guard.
  {
    search::SearchConfig config;
    config.initial_points_per_dim = 2;
    config.max_resolution = 2;
    config.regions_per_level = 2;
    config.probabilistic_metric = "ber";
    search::MultiresolutionSearch engine(space, objective, evaluate, config);
    auto result = engine.run();
    result = search::verify_top_candidates(std::move(result), space, objective,
                                           evaluate, 5, 2);
    add("multiresolution + Bayesian guard", result);
  }

  // Multiresolution greedy without the guard (pure interpolation ranking).
  {
    search::SearchConfig config;
    config.initial_points_per_dim = 2;
    config.max_resolution = 2;
    config.regions_per_level = 2;
    search::MultiresolutionSearch engine(space, objective, evaluate, config);
    auto result = engine.run();
    result = search::verify_top_candidates(std::move(result), space, objective,
                                           evaluate, 5, 2);
    add("multiresolution, no Bayesian guard", result);
  }

  // Stochastic baselines at a comparable budget.
  add("random sampling (30 evals)",
      search::random_search(space, objective, evaluate, 30, 1));
  {
    search::AnnealingConfig config;
    config.budget = 30;
    config.cooling = 0.93;
    add("simulated annealing (30 evals)",
        search::annealing_search(space, objective, evaluate, config, 1));
  }

  table.print(std::cout);
  std::cout << "\nExpected: the multiresolution search reaches (near-)\n"
               "exhaustive solution quality with a fraction of the\n"
               "evaluations; the stochastic baselines at the same budget\n"
               "are less reliable, and removing the Bayesian guard costs\n"
               "quality or extra evaluations on the noisy BER constraint.\n";
  return 0;
}
