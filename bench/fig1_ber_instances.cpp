// Reproduces Figure 1: BER vs signal-to-noise ratio for the three Table 1
// Viterbi decoder instances. The paper's point is that the three instances
// have *comparable* BER curves despite a ~7x area spread.
#include <iostream>

#include "bench_common.hpp"
#include "comm/ber.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Figure 1: BER vs Es/N0 for the Table 1 instances",
                      "Figure 1");

  comm::DecoderSpec i1;
  i1.code = comm::best_rate_half_code(3);
  i1.traceback_depth = 6;
  i1.kind = comm::DecoderKind::Soft;
  i1.high_res_bits = 3;

  comm::DecoderSpec i2;
  i2.code = comm::best_rate_half_code(5);
  i2.traceback_depth = 25;
  i2.kind = comm::DecoderKind::Multires;
  i2.low_res_bits = 1;
  i2.high_res_bits = 3;
  i2.num_high_res_paths = 8;

  comm::DecoderSpec i3 = i2;
  i3.code = comm::best_rate_half_code(7);
  i3.traceback_depth = 35;
  i3.num_high_res_paths = 4;

  comm::BerRunConfig cfg;
  cfg.max_bits = bench::budget(400'000);
  cfg.min_bits = cfg.max_bits / 4;
  cfg.max_errors = 2'000;

  const std::vector<double> esn0{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  util::TextTable table({"Es/N0 dB", "K=3 soft3 (I1)", "K=5 multires M=8 (I2)",
                         "K=7 multires M=4 (I3)"});
  for (double snr : esn0) {
    std::vector<std::string> row{util::format_double(snr, 1)};
    for (const auto& spec : {i1, i2, i3}) {
      const auto point = comm::measure_ber(spec, snr, cfg);
      row.push_back(util::format_scientific(point.ber(), 2) + " (" +
                    std::to_string(point.errors.successes) + "err)");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nShape check: all three curves fall steeply with SNR and\n"
               "stay within roughly an order of magnitude of each other,\n"
               "with the higher-K instances pulling ahead at high SNR.\n";
  return 0;
}
