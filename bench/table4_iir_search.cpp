// Reproduces Table 4: IIR MetaCore search on the paper's elliptic bandpass
// specification across sample-period requirements from 5 us down to
// 0.25 us. For each throughput: the best-area design found by the
// multiresolution search, the average area over all feasible candidates
// evaluated during the search, the percentage reduction, and the winning
// structure.
//
// Paper: reductions 63.6% -> 86.1% growing as throughput tightens; winners
// Ladder (5us), Parallel (4-2us), Cascade (1-0.25us); average reduction
// 75.12%, median 71.92%.
#include <iostream>

#include <fstream>

#include "bench_common.hpp"
#include "core/iir_metacore.hpp"
#include "core/report.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Table 4: IIR MetaCore search vs average candidate",
                      "Table 4");

  struct PaperRow {
    double period_us;
    double best_area;
    double avg_area;
    double reduction;
    const char* structure;
  };
  const PaperRow paper[] = {
      {5.0, 5.73, 15.75, 63.62, "Ladder"},  {4.0, 5.92, 18.27, 67.60, "Parallel"},
      {3.0, 5.92, 19.94, 70.31, "Parallel"}, {2.0, 5.92, 21.08, 71.92, "Parallel"},
      {1.0, 6.11, 35.81, 82.94, "Cascade"},  {0.5, 11.63, 69.98, 83.39, "Cascade"},
      {0.25, 22.14, 158.90, 86.07, "Cascade"},
  };

  util::TextTable table({"Period us", "best area (paper)", "best area",
                         "avg area (paper)", "avg area", "reduction (paper)",
                         "reduction", "structure (paper)", "structure"});

  std::vector<double> reductions;
  for (const auto& row : paper) {
    core::IirMetaCore metacore(core::paper_bandpass_requirements(row.period_us));
    search::SearchConfig config;
    config.initial_points_per_dim = 4;
    config.max_resolution = 2;
    config.regions_per_level = 4;
    config.max_evaluations = bench::quick_mode() ? 120 : 400;
    const auto result = metacore.search(config);
    if (const char* csv = std::getenv("METACORE_CSV"); csv && csv[0]) {
      std::ofstream file("iir_search_" + util::format_double(row.period_us, 2) +
                         "us.csv");
      core::write_history_csv(file, result, metacore.design_space(),
                              {"area_mm2", "passband_ripple_db",
                               "stopband_gain_db", "latency_us"});
    }

    std::string best = "infeasible", avg = "-", reduction = "-",
                structure = "-";
    if (result.found_feasible) {
      const double best_area = result.best.eval.metric("area_mm2");
      // Average over the spec-meeting candidates evaluated by the search —
      // the paper's "average case solution".
      double sum = 0.0;
      int n = 0;
      for (const auto& p : result.history) {
        if (metacore.objective().feasible(p.eval)) {
          sum += p.eval.metric("area_mm2");
          ++n;
        }
      }
      const double avg_area = n > 0 ? sum / n : best_area;
      const double red = 1.0 - best_area / avg_area;
      reductions.push_back(red * 100.0);
      best = util::format_double(best_area, 2);
      avg = util::format_double(avg_area, 2);
      reduction = util::format_percent(red, 1);
      structure = dsp::to_string(core::IirMetaCore::structure_at(
          static_cast<int>(result.best.values[0])));
    }
    table.add_row({util::format_double(row.period_us, 2),
                   util::format_double(row.best_area, 2), best,
                   util::format_double(row.avg_area, 2), avg,
                   util::format_double(row.reduction, 1) + "%", reduction,
                   row.structure, structure});
  }
  table.print(std::cout);
  if (!reductions.empty()) {
    double sum = 0.0;
    for (double r : reductions) sum += r;
    std::cout << "\nAverage reduction: "
              << util::format_double(sum / reductions.size(), 2)
              << "% (paper: 75.12%)\n"
              << "Median reduction:  "
              << util::format_double(util::median(reductions), 2)
              << "% (paper: 71.92%)\n";
  }
  std::cout << "Shape check: the searched best sits well below the average\n"
               "candidate at every throughput; the advantage grows as the\n"
               "period tightens, and the winning structure shifts from\n"
               "low-rate-friendly to pipelining-friendly topologies.\n";
  return 0;
}
