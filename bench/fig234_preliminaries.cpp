// Textual reproduction of the paper's preliminary figures:
//  Figure 2 — the rate-1/2, K=3 convolutional encoder,
//  Figure 3 — the 4-state Viterbi trellis diagram,
//  Figure 4 — the 3-bit adaptive soft quantizer's decision levels,
// plus the generated VLIW kernel listing — the inspectable analog of the
// source the paper fed to Trimaran.
#include <iostream>

#include "bench_common.hpp"
#include "comm/quantizer.hpp"
#include "comm/trellis.hpp"
#include "util/table.hpp"
#include "vliw/viterbi_kernel.hpp"

using namespace metacore;

int main() {
  bench::print_header("Figures 2-4: encoder, trellis, adaptive quantizer",
                      "Figures 2, 3, 4");

  const comm::CodeSpec code = comm::best_rate_half_code(3);
  std::cout << "--- Figure 2 ---\n" << comm::describe_encoder(code) << "\n";

  const comm::Trellis trellis(code);
  std::cout << "--- Figure 3 ---\n" << trellis.to_string() << "\n";

  std::cout << "--- Figure 4 ---\n";
  const double sigma = 0.6;
  const comm::Quantizer quantizer(comm::QuantizationMethod::AdaptiveSoft, 3,
                                  1.0, sigma);
  std::cout << "3-bit adaptive quantizer at noise sigma " << sigma
            << ": decision step D = " << quantizer.step() << " ("
            << comm::kAdaptiveDecisionFactor << " * sigma)\n";
  util::TextTable levels({"received range", "level", "metric vs 0",
                          "metric vs 1"});
  for (int level = 0; level < quantizer.levels(); ++level) {
    const double lo = (level - 4) * quantizer.step();
    const double hi = (level - 3) * quantizer.step();
    std::string range;
    if (level == 0) {
      range = "(-inf, " + util::format_double(hi, 2) + ")";
    } else if (level == quantizer.levels() - 1) {
      range = "[" + util::format_double(lo, 2) + ", +inf)";
    } else {
      range = "[" + util::format_double(lo, 2) + ", " +
              util::format_double(hi, 2) + ")";
    }
    levels.add_row({range, std::to_string(level),
                    std::to_string(quantizer.branch_metric(level, 0)),
                    std::to_string(quantizer.branch_metric(level, 1))});
  }
  levels.print(std::cout);

  std::cout << "\n--- Generated VLIW kernel (Trimaran-substitute input) ---\n";
  comm::DecoderSpec spec;
  spec.code = code;
  spec.traceback_depth = 15;
  spec.kind = comm::DecoderKind::Multires;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 2;
  std::cout << vliw::build_viterbi_kernel(spec).to_string();
  return 0;
}
