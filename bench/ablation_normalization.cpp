// Ablation for Section 3.3's normalization discussion: the multiresolution
// correction term can average N = 1..M branch-metric differences ("We can
// further improve on this approach by averaging the differences of two or
// more branch metrics"), and skipping the correction entirely must hurt —
// refined states would gain an unfair traceback advantage.
#include <iostream>

#include "bench_common.hpp"
#include "comm/ber.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Ablation: multiresolution normalization term (N)",
                      "Section 3.3");

  comm::BerRunConfig cfg;
  cfg.max_bits = bench::budget(800'000);
  cfg.min_bits = cfg.max_bits / 4;
  cfg.max_errors = 2'000;

  comm::DecoderSpec base;
  base.code = comm::best_rate_half_code(5);
  base.traceback_depth = 25;
  base.kind = comm::DecoderKind::Multires;
  base.low_res_bits = 1;
  base.high_res_bits = 3;
  base.num_high_res_paths = 8;

  const std::vector<double> esn0{1.0, 2.0};
  util::TextTable table({"decoder", "BER @ 1.0 dB", "BER @ 2.0 dB"});

  // Reference points.
  {
    comm::DecoderSpec hard = base;
    hard.kind = comm::DecoderKind::Hard;
    table.add_row({"hard (reference)",
                   util::format_scientific(comm::measure_ber(hard, 1.0, cfg).ber(), 2),
                   util::format_scientific(comm::measure_ber(hard, 2.0, cfg).ber(), 2)});
  }
  for (int n : {1, 2, 4, 8}) {
    comm::DecoderSpec spec = base;
    spec.normalization_terms = n;
    table.add_row({"multires M=8 N=" + std::to_string(n),
                   util::format_scientific(comm::measure_ber(spec, 1.0, cfg).ber(), 2),
                   util::format_scientific(comm::measure_ber(spec, 2.0, cfg).ber(), 2)});
  }
  {
    comm::DecoderSpec soft = base;
    soft.kind = comm::DecoderKind::Soft;
    table.add_row({"soft 3-bit (reference)",
                   util::format_scientific(comm::measure_ber(soft, 1.0, cfg).ber(), 2),
                   util::format_scientific(comm::measure_ber(soft, 2.0, cfg).ber(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: every N lands between the hard and soft\n"
               "references; averaging more terms (larger N) smooths the\n"
               "correction estimate.\n";
  return 0;
}
