// Design-query service throughput: a mixed batch of Viterbi/IIR queries
// answered cold (empty evaluation store — every query runs its search from
// scratch) and then warm (same journal, fresh service — searches replay out
// of the store), plus the archive-only fast path. Records land in
// BENCH_serve.json (override with METACORE_BENCH_SERVE_JSON) so the
// cold/warm ratio is tracked across PRs.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "serve/service.hpp"
#include "util/table.hpp"

using namespace metacore;

namespace {

std::string bench_serve_json_path() {
  const char* env = std::getenv("METACORE_BENCH_SERVE_JSON");
  return (env != nullptr && env[0] != '\0') ? env : "BENCH_serve.json";
}

std::vector<serve::DesignQuery> demo_batch() {
  std::vector<serve::DesignQuery> batch;
  const std::size_t max_evals = bench::quick_mode() ? 32 : 96;
  for (const double mbps : {1.0, 2.0, 3.0}) {
    serve::DesignQuery query;
    query.kind = serve::QueryKind::Viterbi;
    query.target_ber = 1e-2;
    query.esn0_db = 1.0;
    query.throughput_mbps = mbps;
    query.ber_shards = 4;
    query.budget.initial_points_per_dim = 2;
    query.budget.max_resolution = 1;
    query.budget.regions_per_level = 2;
    query.budget.max_evaluations = max_evals;
    batch.push_back(query);
  }
  serve::DesignQuery iir;
  iir.kind = serve::QueryKind::Iir;
  iir.sample_period_us = 1.0;
  iir.budget.initial_points_per_dim = 2;
  iir.budget.max_resolution = 1;
  iir.budget.regions_per_level = 2;
  iir.budget.max_evaluations = max_evals / 2;
  batch.push_back(iir);
  return batch;
}

struct PassResult {
  double wall_ms = 0.0;
  std::size_t evaluations = 0;
  std::size_t store_hits = 0;
  std::size_t feasible = 0;
};

PassResult run_pass(const std::string& store_path,
                    const std::vector<serve::DesignQuery>& batch) {
  serve::ServiceConfig config;
  config.store_path = store_path;
  serve::DesignService service(config);
  const auto start = std::chrono::steady_clock::now();
  const auto responses = service.submit_batch(batch);
  PassResult pass;
  pass.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  for (const auto& r : responses) {
    pass.evaluations += r.evaluations;
    pass.store_hits += r.store_hits;
    if (r.feasible) ++pass.feasible;
  }
  return pass;
}

}  // namespace

int main() {
  bench::print_header(
      "Design-query service: cold vs warm batch throughput",
      "the serve/ layer built on Section 4.4's search");
  const std::size_t threads = exec::ThreadPool::configured_threads();
  std::cout << "thread pool: " << threads << " thread(s)\n\n";

  const std::string store_path = "bench_service_store.jsonl";
  std::remove(store_path.c_str());
  const auto batch = demo_batch();

  std::cout << "cold pass: " << batch.size()
            << " queries against an empty store...\n";
  const PassResult cold = run_pass(store_path, batch);
  std::cout << "  " << util::format_double(cold.wall_ms, 0) << " ms, "
            << cold.evaluations << " evaluations, " << cold.store_hits
            << " store hits, " << cold.feasible << "/" << batch.size()
            << " feasible\n";

  std::cout << "warm pass: same batch, fresh service, same journal...\n";
  const PassResult warm = run_pass(store_path, batch);
  std::cout << "  " << util::format_double(warm.wall_ms, 0) << " ms, "
            << warm.evaluations << " evaluations, " << warm.store_hits
            << " store hits, " << warm.feasible << "/" << batch.size()
            << " feasible\n";

  // Archive-only fast path: constraint query answered from the journal
  // without a search.
  serve::ServiceConfig config;
  config.store_path = store_path;
  serve::DesignService service(config);
  serve::DesignQuery archive_query = batch.front();
  archive_query.archive_only = true;
  const auto archive_start = std::chrono::steady_clock::now();
  const serve::DesignResponse archived = service.submit(archive_query);
  const double archive_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                archive_start)
                                .count();
  std::cout << "archive-only query: "
            << util::format_double(archive_ms, 2) << " ms, front of "
            << archived.front.size() << " point(s)\n\n";

  const bool consistent = warm.evaluations == cold.evaluations &&
                          warm.store_hits > 0 && cold.store_hits == 0;
  std::cout << "cold/warm speedup: "
            << util::format_double(cold.wall_ms / warm.wall_ms, 1)
            << "x, accounting "
            << (consistent ? "consistent" : "INCONSISTENT") << "\n";

  std::vector<bench::BenchRecord> records;
  bench::BenchRecord record;
  record.name = "serve_batch";
  record.values["threads"] = static_cast<double>(threads);
  record.values["queries"] = static_cast<double>(batch.size());
  record.values["cold_wall_ms"] = cold.wall_ms;
  record.values["warm_wall_ms"] = warm.wall_ms;
  record.values["cold_queries_per_sec"] =
      batch.size() / (cold.wall_ms / 1000.0);
  record.values["warm_queries_per_sec"] =
      batch.size() / (warm.wall_ms / 1000.0);
  record.values["speedup"] = cold.wall_ms / warm.wall_ms;
  record.values["evaluations"] = static_cast<double>(cold.evaluations);
  record.values["warm_store_hits"] = static_cast<double>(warm.store_hits);
  record.values["archive_query_ms"] = archive_ms;
  record.labels["consistent"] = consistent ? "true" : "false";
  records.push_back(std::move(record));
  bench::append_bench_records(records, bench_serve_json_path());
  std::cout << "bench records appended to " << bench_serve_json_path()
            << "\n";

  std::remove(store_path.c_str());
  return consistent ? 0 : 1;
}
