// Reproduces Table 1: area estimates of three Viterbi decoder instances
// under a fixed 1 Mbps throughput requirement.
//
// Paper values (0.35 um): K=3 -> 0.26 mm^2, K=5 multires M=8 -> 0.56 mm^2,
// K=7 multires M=4 -> 1.73 mm^2. The expected *shape* is the strong
// monotone growth with constraint length at comparable BER.
#include <iostream>

#include "bench_common.hpp"
#include "comm/ber.hpp"
#include "cost/viterbi_cost.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Table 1: Viterbi instance areas @ 1 Mbps", "Table 1");

  struct Row {
    comm::DecoderSpec spec;
    const char* trellis_depth;
    const char* quant;
    const char* paths;
    double paper_area;
  };

  comm::DecoderSpec i1;
  i1.code = comm::best_rate_half_code(3);
  i1.traceback_depth = 2 * 3;
  i1.kind = comm::DecoderKind::Soft;
  i1.high_res_bits = 3;

  comm::DecoderSpec i2;
  i2.code = comm::best_rate_half_code(5);
  i2.traceback_depth = 5 * 5;
  i2.kind = comm::DecoderKind::Multires;
  i2.low_res_bits = 1;
  i2.high_res_bits = 3;
  i2.num_high_res_paths = 8;

  comm::DecoderSpec i3 = i2;
  i3.code = comm::best_rate_half_code(7);
  i3.traceback_depth = 5 * 7;
  i3.num_high_res_paths = 4;

  const Row rows[] = {
      {i1, "2", "3 / NA", "NA", 0.26},
      {i2, "5", "1/3", "8", 0.56},
      {i3, "5", "1/3", "4", 1.73},
  };

  util::TextTable table({"K", "Trellis Depth (xK)", "Quant. bits (lo/hi)",
                         "Multi-res paths", "Area mm^2 (paper)",
                         "Area mm^2 (measured)", "cycles/bit", "cores",
                         "machine"});
  for (const Row& row : rows) {
    cost::ViterbiCostQuery query;
    query.spec = row.spec;
    query.throughput_mbps = 1.0;
    const auto result = cost::evaluate_viterbi_cost(query);
    table.add_row({std::to_string(row.spec.code.constraint_length),
                   row.trellis_depth, row.quant, row.paths,
                   util::format_double(row.paper_area, 2),
                   result.feasible ? util::format_double(result.area_mm2, 2)
                                   : "infeasible",
                   util::format_double(result.cycles_per_bit, 0),
                   std::to_string(result.cores), result.machine.label()});
  }
  table.print(std::cout);
  std::cout << "\nShape check: areas must grow monotonically down the table.\n";
  return 0;
}
