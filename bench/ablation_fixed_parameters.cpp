// Ablation for the paper's search-space reduction: "Normalization (N) and
// polynomial (G) were fixed to speedup the search process" (Section 5.2).
// Runs the same requirement with G/N fixed (the paper's configuration) and
// unfixed, comparing space size, evaluation counts, and result quality.
#include <iostream>

#include "bench_common.hpp"
#include "core/viterbi_metacore.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Ablation: fixing G and N to speed the search",
                      "Section 5.2");

  core::ViterbiRequirements base;
  base.target_ber = 1e-3;
  base.esn0_db = 1.0;
  base.throughput_mbps = 2.0;

  util::TextTable table({"configuration", "space size", "evaluations",
                         "best design", "area mm^2"});

  for (const bool fixed : {true, false}) {
    core::ViterbiRequirements req = base;
    req.fix_polynomial = fixed;
    req.fix_normalization = fixed;
    core::ViterbiMetaCore metacore(req);

    search::SearchConfig config;
    config.initial_points_per_dim = 4;
    config.max_resolution = 2;
    config.regions_per_level = 3;
    config.max_evaluations = bench::quick_mode() ? 100 : 260;
    const auto result = metacore.search(config);

    std::string best = "not found", area = "-";
    if (result.found_feasible) {
      best = metacore.decode_point(result.best.values).label();
      area = util::format_double(result.best.eval.metric("area_mm2"), 2);
    }
    table.add_row({fixed ? "G, N fixed (paper)" : "G, N free",
                   std::to_string(metacore.design_space().size()),
                   std::to_string(result.evaluations), best, area});
  }
  table.print(std::cout);
  std::cout << "\nExpected: fixing G and N shrinks the space ~8x; at equal\n"
               "budgets the fixed search reaches comparable-or-better area\n"
               "because its budget concentrates on the influential axes —\n"
               "the paper's rationale for fixing them.\n";
  return 0;
}
