// Ablation for the Section 3.1 algorithm-selection claim: "sequential
// decoding performs very well with long-constraint codes [but] has a
// variable decoding time and is less suited for hardware implementations
// [while] the Viterbi decoding algorithm has fixed decoding times".
//
// Measures, across SNR: decode accuracy and *work* (tree extensions per
// bit for sequential, a constant states-per-bit for Viterbi) plus the
// sequential overflow rate.
#include <iostream>

#include "bench_common.hpp"
#include "comm/channel.hpp"
#include "comm/sequential.hpp"
#include "comm/viterbi.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace metacore;
using namespace metacore::comm;

int main() {
  bench::print_header("Ablation: Viterbi vs sequential decoding work profile",
                      "Section 3.1");

  const CodeSpec code = best_rate_half_code(7);
  const Trellis trellis(code);
  const std::size_t block_bits = 1'024;
  const int blocks = bench::quick_mode() ? 6 : 24;

  util::TextTable table({"Es/N0 dB", "Viterbi BER", "Viterbi work/bit",
                         "sequential BER", "seq. work/bit (avg)",
                         "seq. work/bit (max)", "seq. overflows"});

  for (double esn0 : {5.0, 3.0, 1.0, 0.0, -1.0, -2.0}) {
    util::Random data_rng(42);
    AwgnChannel channel(esn0, 1.0, 7);
    const Quantizer quantizer(QuantizationMethod::AdaptiveSoft, 3, 1.0,
                              channel.noise_sigma());
    SequentialConfig seq_config;
    seq_config.max_extensions_per_bit = 256.0;
    const SequentialDecoder sequential(code, quantizer, seq_config);

    std::uint64_t vit_errors = 0, seq_errors = 0, seq_bits = 0;
    double seq_work_sum = 0.0, seq_work_max = 0.0;
    int overflows = 0;
    for (int b = 0; b < blocks; ++b) {
      std::vector<int> bits(block_bits);
      for (auto& bit : bits) bit = data_rng.bit() ? 1 : 0;
      for (int i = 0; i < code.constraint_length - 1; ++i) {
        bits[block_bits - 1 - static_cast<std::size_t>(i)] = 0;
      }
      ConvolutionalEncoder encoder(code);
      BpskModulator mod;
      const auto rx = channel.transmit(mod.modulate(encoder.encode(bits)));

      ViterbiDecoder viterbi(trellis, 49, quantizer);
      const auto vit_out = viterbi.decode(rx);
      for (std::size_t i = 0; i + 6 < block_bits; ++i) {
        vit_errors += vit_out[i] != bits[i];
      }

      const auto seq = sequential.decode(rx);
      if (!seq.completed) {
        ++overflows;
        seq_work_sum += seq_config.max_extensions_per_bit;
        seq_work_max =
            std::max(seq_work_max, seq_config.max_extensions_per_bit);
        continue;
      }
      for (std::size_t i = 0; i < seq.bits.size(); ++i) {
        seq_errors += seq.bits[i] != bits[i];
      }
      seq_bits += seq.bits.size();
      seq_work_sum += seq.extensions_per_bit();
      seq_work_max = std::max(seq_work_max, seq.extensions_per_bit());
    }

    const double denom = static_cast<double>(blocks) * (block_bits - 6);
    table.add_row(
        {util::format_double(esn0, 1),
         util::format_scientific(vit_errors / denom, 1),
         // Viterbi work: 2 ACS per state per bit, constant by construction.
         util::format_double(2.0 * trellis.num_states(), 0) + " (fixed)",
         seq_bits ? util::format_scientific(
                        static_cast<double>(seq_errors) / seq_bits, 1)
                  : "-",
         util::format_double(seq_work_sum / blocks, 1),
         util::format_double(seq_work_max, 1),
         std::to_string(overflows) + "/" + std::to_string(blocks)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: comparable BER at usable SNR, but the sequential\n"
               "decoder's work per bit is tiny at high SNR and explodes (or\n"
               "overflows outright) as the channel degrades — while the\n"
               "Viterbi work profile is constant, which is why it is the\n"
               "hardware-friendly choice the MetaCore builds on. The\n"
               "overflow onset between 3 and 1 dB brackets the theoretical\n"
               "cutoff-rate threshold for rate-1/2 BPSK (~2.4 dB Es/N0),\n"
               "below which sequential decoding effort is unbounded.\n";
  return 0;
}
