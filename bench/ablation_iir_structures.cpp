// Ablation for the IIR structure trade-off behind Table 4: for each
// realization structure, the minimum spec-meeting word length (coefficient
// sensitivity), the recurrence bound (pipelinability), and the estimated
// area across sample periods — the raw map the MetaCore search optimizes
// over.
#include <iostream>

#include "bench_common.hpp"
#include "core/iir_metacore.hpp"
#include "dsp/structures.hpp"
#include "synth/area.hpp"
#include "synth/dfg.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Ablation: IIR structure map (sensitivity/recurrence/area)",
                      "Section 4.5 / Table 4");

  const auto req = core::paper_bandpass_requirements(1.0);
  // Design with the 0.7 ripple-fraction margin the MetaCore search uses:
  // the nominal design consumes 70% of the ripple budget and quantization
  // error lives in the remainder.
  dsp::FilterSpec margined = req.filter;
  margined.passband_ripple_db *= 0.7;
  margined.stopband_atten_db += 3.1;  // -20 log10(0.7)
  const auto design = dsp::design_filter(margined);

  // Minimum spec-meeting word length per structure.
  auto min_word_bits = [&](dsp::StructureKind kind) {
    for (int bits = 8; bits <= 24; ++bits) {
      try {
        const auto q = dsp::realize(design.zpk, kind)->quantized(bits);
        const auto tf = q->effective_tf();
        if (!tf.is_stable()) continue;
        const auto m = dsp::measure_bandpass(tf, req.filter.pass_lo,
                                             req.filter.pass_hi,
                                             req.filter.stop_lo,
                                             req.filter.stop_hi);
        if (m.passband_ripple_db <= req.filter.passband_ripple_db &&
            m.max_stopband_gain_db <= -req.filter.stopband_atten_db) {
          return bits;
        }
      } catch (const std::exception&) {
        return -1;
      }
    }
    return -1;
  };

  util::TextTable table({"structure", "min bits", "recurrence MII",
                         "area @5us", "area @1us", "area @0.25us"});
  for (const auto kind : dsp::all_structures()) {
    const int bits = min_word_bits(kind);
    const synth::Dfg dfg = synth::build_filter_dfg(kind, design.tf.order());
    const int mii = dfg.recurrence_mii(synth::kMulLatency, synth::kAddLatency);
    std::vector<std::string> row{dsp::to_string(kind),
                                 bits > 0 ? std::to_string(bits) : "> 24",
                                 std::to_string(mii)};
    for (double period : {5.0, 1.0, 0.25}) {
      if (bits < 0) {
        row.push_back("-");
        continue;
      }
      synth::IirCostQuery query;
      query.structure = kind;
      query.order = design.tf.order();
      query.word_bits = bits;
      query.sample_period_us = period;
      const auto cost = synth::evaluate_iir_cost(query);
      row.push_back(cost.feasible ? util::format_double(cost.area_mm2, 2)
                                  : "infeasible");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout
      << "\nReading: direct forms need huge words (coefficient sensitivity\n"
         "of the raw order-8 polynomials); the ladder's word length and\n"
         "recurrence both exceed the cascade/parallel forms; the winners\n"
         "Table 4 picks are the structures combining small words with low\n"
         "recurrence bounds at the required rate.\n";
  return 0;
}
