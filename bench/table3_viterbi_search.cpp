// Reproduces Table 3: Viterbi MetaCore search outcomes under several
// (desired BER, desired throughput) requirement pairs, with G and N fixed
// to speed up the search (as in the paper).
//
// Paper rows (BER at Es/N0 = 1.0, area in mm^2 at 0.35 um):
//   1e-2 @ 5 Mbps -> K=3 L=4K  R=2 adaptive,      0.35
//   1e-4 @ 2 Mbps -> K=5 L=6K  R1=1 R2=3 M=5,     1.2
//   1e-5 @ 1 Mbps -> K=7 L=7K  R=3 adaptive,      2.2
//   1e-5 @ 3 Mbps -> K=7 L=7K  R1=2 R2=4,         3.3
//   1e-9 @ 1 Mbps -> not feasible
//
// Our AWGN/BER substrate is slightly more pessimistic than the authors'
// simulator, so the search typically selects one constraint-length notch
// higher at the same nominal target; the monotone area growth and the
// infeasible final row are the reproduced shape.
#include <iostream>

#include "bench_common.hpp"
#include "core/viterbi_metacore.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  bench::print_header("Table 3: Viterbi MetaCore search outcomes", "Table 3");

  struct Requirement {
    double ber;
    double mbps;
    const char* paper;
  };
  const Requirement rows[] = {
      {1e-2, 5.0, "K=3 L=4K R=2 A, 0.35"},
      {1e-4, 2.0, "K=5 L=6K R1=1 R2=3 M=5 F, 1.2"},
      {1e-5, 1.0, "K=7 L=7K R=3 A, 2.2"},
      {1e-5, 3.0, "K=7 L=7K R1=2 R2=4 A, 3.3"},
      {1e-9, 1.0, "Not Feasible"},
  };

  util::TextTable table({"Desired BER", "Throughput", "paper result",
                         "measured result", "measured BER", "evals"});

  for (const auto& req : rows) {
    core::ViterbiRequirements requirements;
    requirements.target_ber = req.ber;
    requirements.esn0_db = 1.0;
    requirements.throughput_mbps = req.mbps;
    core::ViterbiMetaCore metacore(requirements);

    search::SearchConfig config;
    config.initial_points_per_dim = 4;
    config.max_resolution = 2;
    config.regions_per_level = 4;
    config.max_evaluations = bench::quick_mode() ? 120 : 320;
    const auto result = metacore.search(config);

    std::string outcome = "Not Feasible";
    std::string measured_ber = "-";
    if (result.found_feasible) {
      const auto spec = metacore.decode_point(result.best.values);
      outcome = core::describe(spec, result.best.eval.metric("area_mm2"));
      measured_ber =
          util::format_scientific(result.best.eval.metric("ber_observed"), 1);
    }
    table.add_row({util::format_scientific(req.ber, 0),
                   util::format_double(req.mbps, 0) + " Mbps", req.paper,
                   outcome, measured_ber, std::to_string(result.evaluations)});
    std::cout << "  [done] BER<=" << util::format_scientific(req.ber, 0)
              << " @ " << req.mbps << " Mbps -> " << outcome << "\n";
    std::cout.flush();
  }
  std::cout << '\n';

  std::cout << "\nShape check: area grows as the BER target tightens and the\n"
               "throughput requirement rises; the 1e-9 target is infeasible.\n";
  return 0;
}
