// Reproduces Table 3: Viterbi MetaCore search outcomes under several
// (desired BER, desired throughput) requirement pairs, with G and N fixed
// to speed up the search (as in the paper).
//
// Paper rows (BER at Es/N0 = 1.0, area in mm^2 at 0.35 um):
//   1e-2 @ 5 Mbps -> K=3 L=4K  R=2 adaptive,      0.35
//   1e-4 @ 2 Mbps -> K=5 L=6K  R1=1 R2=3 M=5,     1.2
//   1e-5 @ 1 Mbps -> K=7 L=7K  R=3 adaptive,      2.2
//   1e-5 @ 3 Mbps -> K=7 L=7K  R1=2 R2=4,         3.3
//   1e-9 @ 1 Mbps -> not feasible
//
// Our AWGN/BER substrate is slightly more pessimistic than the authors'
// simulator, so the search typically selects one constraint-length notch
// higher at the same nominal target; the monotone area growth and the
// infeasible final row are the reproduced shape.
//
// Doubling as the parallel-search benchmark: when METACORE_THREADS > 1,
// every row is searched twice — on the configured pool and on a serial
// pool — the winning points are checked bit-identical, and wall times,
// evaluations/sec, and the speedup land in BENCH_search.json.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "comm/ber.hpp"
#include "core/viterbi_metacore.hpp"
#include "exec/thread_pool.hpp"
#include "util/table.hpp"

using namespace metacore;

namespace {

double run_timed(const core::ViterbiMetaCore& metacore,
                 const search::SearchConfig& config,
                 search::SearchResult* out) {
  const auto start = std::chrono::steady_clock::now();
  *out = metacore.search(config);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  bench::print_header("Table 3: Viterbi MetaCore search outcomes", "Table 3");
  const std::size_t threads = exec::ThreadPool::configured_threads();
  std::cout << "thread pool: " << threads << " thread(s)\n\n";

  struct Requirement {
    double ber;
    double mbps;
    const char* paper;
  };
  const Requirement rows[] = {
      {1e-2, 5.0, "K=3 L=4K R=2 A, 0.35"},
      {1e-4, 2.0, "K=5 L=6K R1=1 R2=3 M=5 F, 1.2"},
      {1e-5, 1.0, "K=7 L=7K R=3 A, 2.2"},
      {1e-5, 3.0, "K=7 L=7K R1=2 R2=4 A, 3.3"},
      {1e-9, 1.0, "Not Feasible"},
  };

  util::TextTable table({"Desired BER", "Throughput", "paper result",
                         "measured result", "measured BER", "evals"});
  std::vector<bench::BenchRecord> records;
  double total_parallel_ms = 0.0;
  double total_serial_ms = 0.0;
  std::size_t total_evals = 0;
  std::size_t total_cache_hits = 0;
  std::uint64_t total_decoded_bits = 0;
  std::size_t total_failed = 0;
  std::size_t total_retried = 0;
  bool all_identical = true;

  for (const auto& req : rows) {
    core::ViterbiRequirements requirements;
    requirements.target_ber = req.ber;
    requirements.esn0_db = 1.0;
    requirements.throughput_mbps = req.mbps;
    core::ViterbiMetaCore metacore(requirements);

    search::SearchConfig config;
    config.initial_points_per_dim = 4;
    config.max_resolution = 2;
    config.regions_per_level = 4;
    config.max_evaluations = bench::quick_mode() ? 120 : 320;

    exec::ThreadPool::set_global_threads(threads);
    search::SearchResult result;
    const std::uint64_t bits_before = comm::ber_decoded_bits_total();
    const double parallel_ms = run_timed(metacore, config, &result);
    const std::uint64_t bits_decoded =
        comm::ber_decoded_bits_total() - bits_before;
    total_parallel_ms += parallel_ms;
    total_evals += result.evaluations;
    total_cache_hits += result.cache_hits;
    total_decoded_bits += bits_decoded;

    bench::BenchRecord record;
    record.name = "table3_search";
    record.labels["requirement"] =
        util::format_scientific(req.ber, 0) + "@" +
        util::format_double(req.mbps, 0) + "Mbps";
    record.values["threads"] = static_cast<double>(threads);
    record.values["wall_ms"] = parallel_ms;
    record.values["evaluations"] = static_cast<double>(result.evaluations);
    record.values["evaluations_per_sec"] =
        result.evaluations / (parallel_ms / 1000.0);
    // Decode throughput sustained by the Monte-Carlo BER engine during this
    // search — the figure the batched decoder kernels move.
    record.values["decoded_bits_per_second"] =
        static_cast<double>(bits_decoded) / (parallel_ms / 1000.0);
    record.values["cache_hits"] = static_cast<double>(result.cache_hits);
    record.values["store_hits"] = static_cast<double>(result.store_hits);
    record.values["divergent_duplicates"] =
        static_cast<double>(result.divergent_duplicates);
    record.values["failed_evaluations"] =
        static_cast<double>(result.failures.failed_evaluations);
    record.values["retried_evaluations"] =
        static_cast<double>(result.failures.retries);
    total_failed += result.failures.failed_evaluations;
    total_retried += result.failures.retries;

    if (threads > 1) {
      // Serial baseline on the same requirement: must match bit-for-bit.
      exec::ThreadPool::set_global_threads(1);
      search::SearchResult serial;
      const double serial_ms = run_timed(metacore, config, &serial);
      exec::ThreadPool::set_global_threads(threads);
      total_serial_ms += serial_ms;
      const bool identical =
          serial.best.indices == result.best.indices &&
          serial.best.eval.metrics == result.best.eval.metrics &&
          serial.evaluations == result.evaluations;
      all_identical = all_identical && identical;
      record.values["serial_wall_ms"] = serial_ms;
      record.values["speedup"] = serial_ms / parallel_ms;
      record.labels["best_identical"] = identical ? "true" : "false";
      if (!identical) {
        std::cout << "  [WARN] parallel and serial runs diverged!\n";
      }
    }
    records.push_back(std::move(record));

    std::string outcome = "Not Feasible";
    std::string measured_ber = "-";
    if (result.found_feasible) {
      const auto spec = metacore.decode_point(result.best.values);
      outcome = core::describe(spec, result.best.eval.metric("area_mm2"));
      measured_ber =
          util::format_scientific(result.best.eval.metric("ber_observed"), 1);
    }
    table.add_row({util::format_scientific(req.ber, 0),
                   util::format_double(req.mbps, 0) + " Mbps", req.paper,
                   outcome, measured_ber, std::to_string(result.evaluations)});
    std::cout << "  [done] BER<=" << util::format_scientific(req.ber, 0)
              << " @ " << req.mbps << " Mbps -> " << outcome << " ("
              << util::format_double(parallel_ms, 0) << " ms)\n";
    std::cout.flush();
  }
  std::cout << '\n';

  bench::BenchRecord total;
  total.name = "table3_search_total";
  total.values["threads"] = static_cast<double>(threads);
  total.values["wall_ms"] = total_parallel_ms;
  total.values["evaluations"] = static_cast<double>(total_evals);
  total.values["evaluations_per_sec"] =
      total_evals / (total_parallel_ms / 1000.0);
  total.values["decoded_bits_per_second"] =
      static_cast<double>(total_decoded_bits) / (total_parallel_ms / 1000.0);
  total.values["cache_hits"] = static_cast<double>(total_cache_hits);
  total.values["failed_evaluations"] = static_cast<double>(total_failed);
  total.values["retried_evaluations"] = static_cast<double>(total_retried);
  if (threads > 1) {
    total.values["serial_wall_ms"] = total_serial_ms;
    total.values["speedup"] = total_serial_ms / total_parallel_ms;
    total.labels["best_identical"] = all_identical ? "true" : "false";
    std::cout << "parallel total: "
              << util::format_double(total_parallel_ms / 1000.0, 2)
              << " s, serial total: "
              << util::format_double(total_serial_ms / 1000.0, 2)
              << " s, speedup: "
              << util::format_double(total_serial_ms / total_parallel_ms, 2)
              << "x, results "
              << (all_identical ? "bit-identical" : "DIVERGED") << "\n";
  }
  records.push_back(std::move(total));
  bench::append_bench_records(records);
  std::cout << "bench records appended to " << bench::bench_json_path()
            << "\n";

  std::cout << "\nShape check: area grows as the BER target tightens and the\n"
               "throughput requirement rises; the 1e-9 target is infeasible.\n";
  return 0;
}
