// Networked design-server load generator: an in-process DesignServer on an
// ephemeral loopback port, hammered by N client connections over real TCP.
// For each point of a worker-scaling sweep (1/2/4/8 dispatch workers, store
// sharded to match), three passes measure the serving stack end to end
// (framing, epoll loop, admission queue, dispatch workers, DesignService):
//
//   cold closed-loop  — empty store, each connection sends one query at a
//                       time and waits; searches run from scratch
//   warm closed-loop  — fresh server, same journal; searches replay out of
//                       the store, so this isolates the wire + dispatch cost
//   warm pipelined    — every connection bursts its whole batch before
//                       reading anything (open loop), stressing the
//                       multiplexer, the admission queue, and the worker
//                       pool's per-fingerprint routing
//
// Client-side latency is recorded per request; every pass lands one record
// carrying workers, shards, p50/p99, and queries/sec in BENCH_serve.json
// (override with METACORE_BENCH_SERVE_JSON) next to the bench_service
// records, so both the socket tax and the worker-pool scaling curve are
// tracked across PRs.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"
#include "serve/store.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace metacore;

namespace {

std::string bench_serve_json_path() {
  const char* env = std::getenv("METACORE_BENCH_SERVE_JSON");
  return (env != nullptr && env[0] != '\0') ? env : "BENCH_serve.json";
}

/// A small pool of distinct queries; every connection cycles through it so
/// the warm pass replays exactly the points the cold pass journaled. Four
/// distinct throughput requirements = four evaluator fingerprints, so a
/// multi-worker server has real routing to do. `deep` widens the search
/// budget (denser grid, two refinement levels) so the archived Pareto
/// fronts grow large — the shape the wire-byte comparison is about.
std::vector<serve::DesignQuery> query_pool(bool deep) {
  std::vector<serve::DesignQuery> pool;
  const std::size_t max_evals =
      bench::quick_mode() ? 16 : (deep ? 96 : 48);
  for (const double mbps : {1.0, 2.0, 3.0, 4.0}) {
    serve::DesignQuery query;
    query.kind = serve::QueryKind::Viterbi;
    query.target_ber = 1e-2;
    query.esn0_db = 1.0;
    query.throughput_mbps = mbps;
    query.ber_shards = 2;
    query.budget.initial_points_per_dim = deep ? 3 : 2;
    query.budget.max_resolution = deep ? 2 : 0;
    query.budget.regions_per_level = deep ? 2 : 1;
    query.budget.max_evaluations = max_evals;
    pool.push_back(query);
  }
  return pool;
}

struct PassResult {
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double queries_per_sec = 0.0;
  std::size_t queries = 0;
  std::size_t errors = 0;
  std::size_t store_hits = 0;
  std::size_t wire_bytes_sent = 0;      ///< client -> server, framing included
  std::size_t wire_bytes_received = 0;  ///< server -> client
  double wire_mb_per_sec = 0.0;         ///< both directions over the wall
  std::size_t response_cache_hits = 0;
};

struct PassOptions {
  /// Closed loop (send, wait, repeat) vs open loop (burst, then drain).
  bool pipelined = false;
  /// Negotiate the MCB1 binary wire mode before sending any query.
  bool binary = false;
  /// Serialized-response cache capacity (0 disables; 256 is the default).
  std::size_t response_cache_capacity = 256;
  /// Closed-loop replays of the whole pool per connection BEFORE the
  /// measured phase (traffic counters reset afterwards, and the phases are
  /// separated by a rendezvous). Two loops fill both the store replay path
  /// and the serialized-response cache, so the measured phase isolates the
  /// serving hot path the cache passes compare.
  std::size_t prewarm_loops = 0;
};

/// Runs one pass against a fresh server over the given journal, with
/// `workers` dispatch workers and the store sharded `shards` ways.
PassResult run_pass(const std::string& store_path,
                    const std::vector<serve::DesignQuery>& pool,
                    std::size_t connections,
                    std::size_t queries_per_connection,
                    const PassOptions& options, std::size_t workers,
                    std::size_t shards) {
  serve::StoreConfig store_config = serve::StoreConfig::from_env();
  store_config.shards = shards;
  serve::ServiceConfig service_config;
  service_config.store =
      std::make_shared<serve::EvaluationStore>(store_path, store_config);
  service_config.response_cache_capacity = options.response_cache_capacity;
  auto service = std::make_shared<serve::DesignService>(service_config);
  net::ServerConfig server_config;
  server_config.search_workers = workers;
  server_config.max_pending_queries =
      std::max<std::size_t>(256, connections * queries_per_connection);
  net::DesignServer server(service, server_config);
  server.start();

  std::mutex merge_mutex;
  std::condition_variable ready_cv;
  std::size_t ready = 0;
  std::chrono::steady_clock::time_point measure_start;
  std::chrono::steady_clock::time_point measure_end;
  std::vector<double> latencies_ms;
  PassResult pass;

  std::vector<std::thread> load_threads;
  for (std::size_t c = 0; c < connections; ++c) {
    load_threads.emplace_back([&, c] {
      net::DesignClient client;
      client.connect("127.0.0.1", server.port());
      std::vector<double> local_ms;
      std::size_t local_errors = 0;
      if (options.binary && !client.negotiate_binary()) ++local_errors;
      for (std::size_t loop = 0; loop < options.prewarm_loops; ++loop) {
        for (const auto& query : pool) {
          if (!client.query(query).ok()) ++local_errors;
        }
      }
      client.reset_stats();
      // Rendezvous: every connection enters the measured phase together,
      // so the wall clock covers serving, not prewarm stragglers.
      {
        std::unique_lock<std::mutex> lock(merge_mutex);
        if (++ready == connections) {
          measure_start = std::chrono::steady_clock::now();
          ready_cv.notify_all();
        } else {
          ready_cv.wait(lock, [&] { return ready == connections; });
        }
      }
      if (options.pipelined) {
        const auto burst_start = std::chrono::steady_clock::now();
        std::vector<std::string> ids;
        for (std::size_t q = 0; q < queries_per_connection; ++q) {
          const std::string id =
              "b" + std::to_string(c) + "-" + std::to_string(q);
          client.send_query(id, pool[(c + q) % pool.size()]);
          ids.push_back(id);
        }
        for (const auto& id : ids) {
          const net::WireResponse r = client.recv_matching(id);
          // Open loop: latency is measured from the burst, so it includes
          // queue wait — that is the point of this pass.
          local_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() -
                                 burst_start)
                                 .count());
          if (!r.ok()) ++local_errors;
        }
      } else {
        for (std::size_t q = 0; q < queries_per_connection; ++q) {
          const auto t0 = std::chrono::steady_clock::now();
          const net::WireResponse r =
              client.query(pool[(c + q) % pool.size()]);
          local_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
          if (!r.ok()) ++local_errors;
        }
      }
      const auto local_end = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
      pass.errors += local_errors;
      pass.wire_bytes_sent += client.client_stats().wire_bytes_sent;
      pass.wire_bytes_received += client.client_stats().wire_bytes_received;
      measure_end = std::max(measure_end, local_end);
    });
  }
  for (auto& thread : load_threads) thread.join();
  pass.wall_ms = std::chrono::duration<double, std::milli>(measure_end -
                                                           measure_start)
                     .count();
  pass.store_hits = service->stats().store_hits;
  pass.response_cache_hits = service->stats().response_cache_hits;
  server.shutdown();

  pass.queries = latencies_ms.size();
  pass.p50_ms = util::percentile(latencies_ms, 50.0);
  pass.p99_ms = util::percentile(latencies_ms, 99.0);
  pass.queries_per_sec = pass.queries / (pass.wall_ms / 1000.0);
  pass.wire_mb_per_sec =
      static_cast<double>(pass.wire_bytes_sent + pass.wire_bytes_received) /
      1e6 / (pass.wall_ms / 1000.0);
  return pass;
}

/// Measures the response wire bytes of large-front `archive_only` queries:
/// each connection first replays the pool once (closed loop) so the
/// service's Pareto archive fills, then — with its traffic counters reset —
/// probes the archive repeatedly. Only the probe phase is measured, so
/// bytes-per-response isolates the encoded DesignResponse payload cost of
/// the chosen wire mode.
PassResult run_archive_pass(const std::string& store_path,
                            const std::vector<serve::DesignQuery>& pool,
                            std::size_t connections,
                            std::size_t probes_per_connection, bool binary,
                            std::size_t workers, std::size_t shards) {
  serve::StoreConfig store_config = serve::StoreConfig::from_env();
  store_config.shards = shards;
  serve::ServiceConfig service_config;
  service_config.store =
      std::make_shared<serve::EvaluationStore>(store_path, store_config);
  auto service = std::make_shared<serve::DesignService>(service_config);
  net::ServerConfig server_config;
  server_config.search_workers = workers;
  net::DesignServer server(service, server_config);
  server.start();

  std::vector<serve::DesignQuery> probes = pool;
  for (auto& probe : probes) probe.archive_only = true;

  std::mutex merge_mutex;
  std::vector<double> latencies_ms;
  PassResult pass;
  std::vector<std::thread> load_threads;
  for (std::size_t c = 0; c < connections; ++c) {
    load_threads.emplace_back([&, c] {
      net::DesignClient client;
      client.connect("127.0.0.1", server.port());
      std::size_t local_errors = 0;
      if (binary && !client.negotiate_binary()) ++local_errors;
      for (const auto& query : pool) {
        if (!client.query(query).ok()) ++local_errors;
      }
      client.reset_stats();
      const auto probe_start = std::chrono::steady_clock::now();
      std::vector<double> local_ms;
      for (std::size_t q = 0; q < probes_per_connection; ++q) {
        const auto t0 = std::chrono::steady_clock::now();
        const net::WireResponse r = client.query(probes[(c + q) % probes.size()]);
        local_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
        if (!r.ok() || r.response_json.empty()) ++local_errors;
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
      pass.errors += local_errors;
      pass.wire_bytes_sent += client.client_stats().wire_bytes_sent;
      pass.wire_bytes_received += client.client_stats().wire_bytes_received;
      pass.wall_ms = std::max(
          pass.wall_ms, std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - probe_start)
                            .count());
    });
  }
  for (auto& thread : load_threads) thread.join();
  pass.store_hits = service->stats().store_hits;
  pass.response_cache_hits = service->stats().response_cache_hits;
  server.shutdown();

  pass.queries = latencies_ms.size();
  pass.p50_ms = util::percentile(latencies_ms, 50.0);
  pass.p99_ms = util::percentile(latencies_ms, 99.0);
  pass.queries_per_sec = pass.queries / (pass.wall_ms / 1000.0);
  pass.wire_mb_per_sec =
      static_cast<double>(pass.wire_bytes_sent + pass.wire_bytes_received) /
      1e6 / (pass.wall_ms / 1000.0);
  return pass;
}

void print_pass(const std::string& name, const PassResult& pass) {
  std::cout << "  " << name << ": " << pass.queries << " queries in "
            << util::format_double(pass.wall_ms, 0) << " ms ("
            << util::format_double(pass.queries_per_sec, 1)
            << " q/s), p50 " << util::format_double(pass.p50_ms, 2)
            << " ms, p99 " << util::format_double(pass.p99_ms, 2) << " ms, "
            << pass.store_hits << " store hits, "
            << (pass.wire_bytes_sent + pass.wire_bytes_received)
            << " wire bytes ("
            << util::format_double(pass.wire_mb_per_sec, 2) << " MB/s), "
            << pass.errors << " errors\n";
}

bench::BenchRecord to_record(const std::string& name, const PassResult& pass,
                             std::size_t connections, std::size_t workers,
                             std::size_t shards,
                             const std::string& wire = "text") {
  bench::BenchRecord record;
  record.name = name;
  record.values["connections"] = static_cast<double>(connections);
  record.values["workers"] = static_cast<double>(workers);
  record.values["shards"] = static_cast<double>(shards);
  record.values["queries"] = static_cast<double>(pass.queries);
  record.values["wall_ms"] = pass.wall_ms;
  record.values["queries_per_sec"] = pass.queries_per_sec;
  record.values["p50_ms"] = pass.p50_ms;
  record.values["p99_ms"] = pass.p99_ms;
  record.values["errors"] = static_cast<double>(pass.errors);
  record.values["store_hits"] = static_cast<double>(pass.store_hits);
  record.values["wire_bytes_sent"] =
      static_cast<double>(pass.wire_bytes_sent);
  record.values["wire_bytes_received"] =
      static_cast<double>(pass.wire_bytes_received);
  record.values["wire_mb_per_sec"] = pass.wire_mb_per_sec;
  record.values["response_cache_hits"] =
      static_cast<double>(pass.response_cache_hits);
  record.labels["wire"] = wire;
  return record;
}

void remove_store(const std::string& store_path) {
  std::error_code ec;
  std::filesystem::remove(store_path, ec);
  std::filesystem::remove_all(store_path + ".d", ec);
}

}  // namespace

int main() {
  bench::print_header(
      "Design server: socket-level load, worker-scaling sweep",
      "the net/ serving layer over Section 4.4's search");
  const std::size_t connections = bench::quick_mode() ? 2 : 8;
  const std::size_t queries_per_connection = bench::quick_mode() ? 3 : 6;
  const std::vector<std::size_t> worker_sweep =
      bench::quick_mode() ? std::vector<std::size_t>{1, 4}
                          : std::vector<std::size_t>{1, 2, 4, 8};
  std::cout << connections << " connection(s) x " << queries_per_connection
            << " query(ies) each, loopback TCP, "
            << std::thread::hardware_concurrency() << " hardware thread(s)\n";

  // METACORE_BENCH_SECTION=sweep|wire runs just that section (iteration
  // aid); unset runs everything.
  const char* section_env = std::getenv("METACORE_BENCH_SECTION");
  const std::string section = section_env != nullptr ? section_env : "";
  const bool run_sweep = section.empty() || section == "sweep";
  const bool run_wire = section.empty() || section == "wire";

  std::vector<bench::BenchRecord> records;
  bool consistent = true;
  double warm_pipelined_qps_1w = 0.0;
  double warm_pipelined_qps_best = 0.0;
  std::size_t best_workers = 1;
  const auto sweep_pool = query_pool(/*deep=*/false);

  for (const std::size_t workers :
       run_sweep ? worker_sweep : std::vector<std::size_t>{}) {
    // Shard the store to match the worker pool so per-fingerprint routing
    // lands each worker on its own shard (the intended deployment shape).
    const std::size_t shards = workers;
    const std::string store_path =
        "bench_server_store_w" + std::to_string(workers) + ".jsonl";
    remove_store(store_path);

    std::cout << "\n[" << workers << " worker(s), " << shards
              << " shard(s)]\n";
    PassOptions closed_loop;
    PassOptions pipelined;
    pipelined.pipelined = true;
    const PassResult cold =
        run_pass(store_path, sweep_pool, connections, queries_per_connection,
                 closed_loop, workers, shards);
    print_pass("cold closed-loop", cold);
    const PassResult warm =
        run_pass(store_path, sweep_pool, connections, queries_per_connection,
                 closed_loop, workers, shards);
    print_pass("warm closed-loop", warm);
    const PassResult burst =
        run_pass(store_path, sweep_pool, connections, queries_per_connection,
                 pipelined, workers, shards);
    print_pass("warm pipelined ", burst);

    // The cold pass may legitimately record some store hits: connections
    // share the journal, so a query overlapping one another connection
    // already finished replays those points. Warm passes must hit.
    consistent = consistent && cold.errors == 0 && warm.errors == 0 &&
                 burst.errors == 0 && warm.store_hits > 0 &&
                 burst.store_hits > 0;
    std::cout << "  cold/warm speedup: "
              << util::format_double(cold.wall_ms / warm.wall_ms, 1) << "x\n";

    records.push_back(
        to_record("serve_socket_cold", cold, connections, workers, shards));
    records.push_back(
        to_record("serve_socket_warm", warm, connections, workers, shards));
    records.push_back(to_record("serve_socket_pipelined", burst, connections,
                                workers, shards));

    if (workers == 1) warm_pipelined_qps_1w = burst.queries_per_sec;
    if (burst.queries_per_sec > warm_pipelined_qps_best) {
      warm_pipelined_qps_best = burst.queries_per_sec;
      best_workers = workers;
    }
    remove_store(store_path);
  }

  if (run_sweep) {
    const double scaling =
        warm_pipelined_qps_1w > 0.0
            ? warm_pipelined_qps_best / warm_pipelined_qps_1w
            : 0.0;
    std::cout << "\nwarm pipelined scaling: best "
              << util::format_double(warm_pipelined_qps_best, 1)
              << " q/s at " << best_workers << " worker(s), "
              << util::format_double(scaling, 2)
              << "x over 1 worker; accounting "
              << (consistent ? "consistent" : "INCONSISTENT") << "\n";
  }

  // --- Wire mode x response cache (fixed 2 workers / 2 shards) -----------
  //
  // Same warm store for every pass, so the passes differ only in wire
  // encoding and cache capacity: pipelined repeats measure the response
  // cache's qps win, closed-loop archive probes measure the binary
  // encoding's wire-byte win on large-front responses.
  if (run_wire) {
    const std::size_t wire_workers = 2;
    const std::size_t wire_shards = 2;
    const std::size_t repeats = bench::quick_mode() ? 6 : 16;
    const std::string store_path = "bench_server_store_wire.jsonl";
    remove_store(store_path);
    std::cout << "\n[wire mode x response cache, " << wire_workers
              << " worker(s)]\n";

    // The deep pool archives a dense multi-level search per fingerprint,
    // so archive probes answer with the large Pareto fronts whose byte
    // cost the wire modes are compared on.
    const auto wire_pool = query_pool(/*deep=*/true);
    PassOptions seed_options;  // journal the pool once, text, closed loop
    run_pass(store_path, wire_pool, connections, queries_per_connection,
             seed_options, wire_workers, wire_shards);

    PassOptions cache_off;
    cache_off.pipelined = true;
    cache_off.response_cache_capacity = 0;
    cache_off.prewarm_loops = 2;
    PassOptions cache_on = cache_off;
    cache_on.response_cache_capacity = 256;
    PassOptions binary_on = cache_on;
    binary_on.binary = true;

    const PassResult off =
        run_pass(store_path, wire_pool, connections, repeats, cache_off,
                 wire_workers, wire_shards);
    print_pass("warm pipelined, text, cache off", off);
    const PassResult on =
        run_pass(store_path, wire_pool, connections, repeats, cache_on,
                 wire_workers, wire_shards);
    print_pass("warm pipelined, text, cache on ", on);
    const PassResult bin =
        run_pass(store_path, wire_pool, connections, repeats, binary_on,
                 wire_workers, wire_shards);
    print_pass("warm pipelined, binary, cache on", bin);
    const double cache_speedup =
        off.queries_per_sec > 0.0 ? on.queries_per_sec / off.queries_per_sec
                                  : 0.0;
    std::cout << "  response cache qps gain: "
              << util::format_double(cache_speedup, 2) << "x ("
              << on.response_cache_hits << " hits)\n";

    const std::size_t probes = bench::quick_mode() ? 4 : 12;
    const PassResult text_archive =
        run_archive_pass(store_path, wire_pool, connections, probes, false,
                         wire_workers, wire_shards);
    print_pass("archive probes, text  ", text_archive);
    const PassResult bin_archive =
        run_archive_pass(store_path, wire_pool, connections, probes, true,
                         wire_workers, wire_shards);
    print_pass("archive probes, binary", bin_archive);
    const double text_bytes_per_response =
        text_archive.queries > 0
            ? static_cast<double>(text_archive.wire_bytes_received) /
                  static_cast<double>(text_archive.queries)
            : 0.0;
    const double bin_bytes_per_response =
        bin_archive.queries > 0
            ? static_cast<double>(bin_archive.wire_bytes_received) /
                  static_cast<double>(bin_archive.queries)
            : 0.0;
    const double wire_cut = bin_bytes_per_response > 0.0
                                ? text_bytes_per_response /
                                      bin_bytes_per_response
                                : 0.0;
    std::cout << "  archive response bytes: text "
              << util::format_double(text_bytes_per_response, 0)
              << " B, binary "
              << util::format_double(bin_bytes_per_response, 0) << " B — "
              << util::format_double(wire_cut, 2) << "x cut\n";

    // The binary mode must actually pay for itself on large-front
    // responses (the acceptance bar is a >= 2x wire-byte cut), the cache
    // must actually hit, and nothing may error in any mode. Quick mode
    // shrinks the fronts (and with them the byte win), so the 2x bar is
    // only enforced on full-size runs.
    consistent = consistent && off.errors == 0 && on.errors == 0 &&
                 bin.errors == 0 && text_archive.errors == 0 &&
                 bin_archive.errors == 0 && on.response_cache_hits > 0 &&
                 (bench::quick_mode() || wire_cut >= 2.0);

    records.push_back(to_record("serve_wire_pipelined_cache_off", off,
                                connections, wire_workers, wire_shards));
    records.push_back(to_record("serve_wire_pipelined_cache_on", on,
                                connections, wire_workers, wire_shards));
    records.push_back(to_record("serve_wire_pipelined_binary", bin,
                                connections, wire_workers, wire_shards,
                                "binary"));
    bench::BenchRecord text_rec =
        to_record("serve_wire_archive_text", text_archive, connections,
                  wire_workers, wire_shards);
    text_rec.values["bytes_per_response"] = text_bytes_per_response;
    records.push_back(text_rec);
    bench::BenchRecord bin_rec =
        to_record("serve_wire_archive_binary", bin_archive, connections,
                  wire_workers, wire_shards, "binary");
    bin_rec.values["bytes_per_response"] = bin_bytes_per_response;
    bin_rec.values["wire_cut_vs_text"] = wire_cut;
    records.push_back(bin_rec);
    remove_store(store_path);
  }

  for (auto& record : records) {
    record.labels["consistent"] = consistent ? "true" : "false";
  }
  bench::append_bench_records(records, bench_serve_json_path());
  std::cout << "bench records appended to " << bench_serve_json_path()
            << "\n";

  return consistent ? 0 : 1;
}
