// Networked design-server load generator: an in-process DesignServer on an
// ephemeral loopback port, hammered by N client connections over real TCP.
// For each point of a worker-scaling sweep (1/2/4/8 dispatch workers, store
// sharded to match), three passes measure the serving stack end to end
// (framing, epoll loop, admission queue, dispatch workers, DesignService):
//
//   cold closed-loop  — empty store, each connection sends one query at a
//                       time and waits; searches run from scratch
//   warm closed-loop  — fresh server, same journal; searches replay out of
//                       the store, so this isolates the wire + dispatch cost
//   warm pipelined    — every connection bursts its whole batch before
//                       reading anything (open loop), stressing the
//                       multiplexer, the admission queue, and the worker
//                       pool's per-fingerprint routing
//
// Client-side latency is recorded per request; every pass lands one record
// carrying workers, shards, p50/p99, and queries/sec in BENCH_serve.json
// (override with METACORE_BENCH_SERVE_JSON) next to the bench_service
// records, so both the socket tax and the worker-pool scaling curve are
// tracked across PRs.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/service.hpp"
#include "serve/store.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace metacore;

namespace {

std::string bench_serve_json_path() {
  const char* env = std::getenv("METACORE_BENCH_SERVE_JSON");
  return (env != nullptr && env[0] != '\0') ? env : "BENCH_serve.json";
}

/// A small pool of distinct queries; every connection cycles through it so
/// the warm pass replays exactly the points the cold pass journaled. Four
/// distinct throughput requirements = four evaluator fingerprints, so a
/// multi-worker server has real routing to do.
std::vector<serve::DesignQuery> query_pool() {
  std::vector<serve::DesignQuery> pool;
  const std::size_t max_evals = bench::quick_mode() ? 16 : 48;
  for (const double mbps : {1.0, 2.0, 3.0, 4.0}) {
    serve::DesignQuery query;
    query.kind = serve::QueryKind::Viterbi;
    query.target_ber = 1e-2;
    query.esn0_db = 1.0;
    query.throughput_mbps = mbps;
    query.ber_shards = 2;
    query.budget.initial_points_per_dim = 2;
    query.budget.max_resolution = 0;
    query.budget.regions_per_level = 1;
    query.budget.max_evaluations = max_evals;
    pool.push_back(query);
  }
  return pool;
}

struct PassResult {
  double wall_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double queries_per_sec = 0.0;
  std::size_t queries = 0;
  std::size_t errors = 0;
  std::size_t store_hits = 0;
};

/// Runs one pass against a fresh server over the given journal, with
/// `workers` dispatch workers and the store sharded `shards` ways.
/// `pipelined` switches each connection from closed-loop (send, wait,
/// repeat) to open-loop (burst everything, then drain the responses).
PassResult run_pass(const std::string& store_path, std::size_t connections,
                    std::size_t queries_per_connection, bool pipelined,
                    std::size_t workers, std::size_t shards) {
  serve::StoreConfig store_config = serve::StoreConfig::from_env();
  store_config.shards = shards;
  serve::ServiceConfig service_config;
  service_config.store =
      std::make_shared<serve::EvaluationStore>(store_path, store_config);
  auto service = std::make_shared<serve::DesignService>(service_config);
  net::ServerConfig server_config;
  server_config.search_workers = workers;
  server_config.max_pending_queries =
      std::max<std::size_t>(256, connections * queries_per_connection);
  net::DesignServer server(service, server_config);
  server.start();

  const auto pool = query_pool();
  std::mutex merge_mutex;
  std::vector<double> latencies_ms;
  PassResult pass;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> load_threads;
  for (std::size_t c = 0; c < connections; ++c) {
    load_threads.emplace_back([&, c] {
      net::DesignClient client;
      client.connect("127.0.0.1", server.port());
      std::vector<double> local_ms;
      std::size_t local_errors = 0;
      if (pipelined) {
        const auto burst_start = std::chrono::steady_clock::now();
        std::vector<std::string> ids;
        for (std::size_t q = 0; q < queries_per_connection; ++q) {
          const std::string id =
              "b" + std::to_string(c) + "-" + std::to_string(q);
          client.send_query(id, pool[(c + q) % pool.size()]);
          ids.push_back(id);
        }
        for (const auto& id : ids) {
          const net::WireResponse r = client.recv_matching(id);
          // Open loop: latency is measured from the burst, so it includes
          // queue wait — that is the point of this pass.
          local_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() -
                                 burst_start)
                                 .count());
          if (!r.ok()) ++local_errors;
        }
      } else {
        for (std::size_t q = 0; q < queries_per_connection; ++q) {
          const auto t0 = std::chrono::steady_clock::now();
          const net::WireResponse r =
              client.query(pool[(c + q) % pool.size()]);
          local_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
          if (!r.ok()) ++local_errors;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
      pass.errors += local_errors;
    });
  }
  for (auto& thread : load_threads) thread.join();
  pass.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  pass.store_hits = service->stats().store_hits;
  server.shutdown();

  pass.queries = latencies_ms.size();
  pass.p50_ms = util::percentile(latencies_ms, 50.0);
  pass.p99_ms = util::percentile(latencies_ms, 99.0);
  pass.queries_per_sec = pass.queries / (pass.wall_ms / 1000.0);
  return pass;
}

void print_pass(const std::string& name, const PassResult& pass) {
  std::cout << "  " << name << ": " << pass.queries << " queries in "
            << util::format_double(pass.wall_ms, 0) << " ms ("
            << util::format_double(pass.queries_per_sec, 1)
            << " q/s), p50 " << util::format_double(pass.p50_ms, 2)
            << " ms, p99 " << util::format_double(pass.p99_ms, 2) << " ms, "
            << pass.store_hits << " store hits, " << pass.errors
            << " errors\n";
}

bench::BenchRecord to_record(const std::string& name, const PassResult& pass,
                             std::size_t connections, std::size_t workers,
                             std::size_t shards) {
  bench::BenchRecord record;
  record.name = name;
  record.values["connections"] = static_cast<double>(connections);
  record.values["workers"] = static_cast<double>(workers);
  record.values["shards"] = static_cast<double>(shards);
  record.values["queries"] = static_cast<double>(pass.queries);
  record.values["wall_ms"] = pass.wall_ms;
  record.values["queries_per_sec"] = pass.queries_per_sec;
  record.values["p50_ms"] = pass.p50_ms;
  record.values["p99_ms"] = pass.p99_ms;
  record.values["errors"] = static_cast<double>(pass.errors);
  record.values["store_hits"] = static_cast<double>(pass.store_hits);
  return record;
}

void remove_store(const std::string& store_path) {
  std::error_code ec;
  std::filesystem::remove(store_path, ec);
  std::filesystem::remove_all(store_path + ".d", ec);
}

}  // namespace

int main() {
  bench::print_header(
      "Design server: socket-level load, worker-scaling sweep",
      "the net/ serving layer over Section 4.4's search");
  const std::size_t connections = bench::quick_mode() ? 2 : 8;
  const std::size_t queries_per_connection = bench::quick_mode() ? 3 : 6;
  const std::vector<std::size_t> worker_sweep =
      bench::quick_mode() ? std::vector<std::size_t>{1, 4}
                          : std::vector<std::size_t>{1, 2, 4, 8};
  std::cout << connections << " connection(s) x " << queries_per_connection
            << " query(ies) each, loopback TCP, "
            << std::thread::hardware_concurrency() << " hardware thread(s)\n";

  std::vector<bench::BenchRecord> records;
  bool consistent = true;
  double warm_pipelined_qps_1w = 0.0;
  double warm_pipelined_qps_best = 0.0;
  std::size_t best_workers = 1;

  for (const std::size_t workers : worker_sweep) {
    // Shard the store to match the worker pool so per-fingerprint routing
    // lands each worker on its own shard (the intended deployment shape).
    const std::size_t shards = workers;
    const std::string store_path =
        "bench_server_store_w" + std::to_string(workers) + ".jsonl";
    remove_store(store_path);

    std::cout << "\n[" << workers << " worker(s), " << shards
              << " shard(s)]\n";
    const PassResult cold = run_pass(store_path, connections,
                                     queries_per_connection, false, workers,
                                     shards);
    print_pass("cold closed-loop", cold);
    const PassResult warm = run_pass(store_path, connections,
                                     queries_per_connection, false, workers,
                                     shards);
    print_pass("warm closed-loop", warm);
    const PassResult burst = run_pass(store_path, connections,
                                      queries_per_connection, true, workers,
                                      shards);
    print_pass("warm pipelined ", burst);

    // The cold pass may legitimately record some store hits: connections
    // share the journal, so a query overlapping one another connection
    // already finished replays those points. Warm passes must hit.
    consistent = consistent && cold.errors == 0 && warm.errors == 0 &&
                 burst.errors == 0 && warm.store_hits > 0 &&
                 burst.store_hits > 0;
    std::cout << "  cold/warm speedup: "
              << util::format_double(cold.wall_ms / warm.wall_ms, 1) << "x\n";

    records.push_back(
        to_record("serve_socket_cold", cold, connections, workers, shards));
    records.push_back(
        to_record("serve_socket_warm", warm, connections, workers, shards));
    records.push_back(to_record("serve_socket_pipelined", burst, connections,
                                workers, shards));

    if (workers == 1) warm_pipelined_qps_1w = burst.queries_per_sec;
    if (burst.queries_per_sec > warm_pipelined_qps_best) {
      warm_pipelined_qps_best = burst.queries_per_sec;
      best_workers = workers;
    }
    remove_store(store_path);
  }

  const double scaling = warm_pipelined_qps_1w > 0.0
                             ? warm_pipelined_qps_best / warm_pipelined_qps_1w
                             : 0.0;
  std::cout << "\nwarm pipelined scaling: best "
            << util::format_double(warm_pipelined_qps_best, 1) << " q/s at "
            << best_workers << " worker(s), "
            << util::format_double(scaling, 2)
            << "x over 1 worker; accounting "
            << (consistent ? "consistent" : "INCONSISTENT") << "\n";

  for (auto& record : records) {
    record.labels["consistent"] = consistent ? "true" : "false";
  }
  bench::append_bench_records(records, bench_serve_json_path());
  std::cout << "bench records appended to " << bench_serve_json_path()
            << "\n";

  return consistent ? 0 : 1;
}
