// IIR MetaCore designer: designs the paper's Section 5.3 elliptic bandpass
// (or a user-specified band), sweeps every realization structure across
// word lengths, and runs the MetaCore search to recommend the cheapest
// implementation for a required sample period.
//
//   $ ./build/examples/iir_designer [sample_period_us]
#include <cstdlib>
#include <iostream>

#include "core/iir_metacore.hpp"
#include "dsp/structures.hpp"
#include "synth/area.hpp"
#include "util/table.hpp"

using namespace metacore;

int main(int argc, char** argv) {
  const double period = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto req = core::paper_bandpass_requirements(period);

  std::cout << "Bandpass specification (paper Sec. 5.3):\n"
            << "  passband  [" << req.filter.pass_lo << ", "
            << req.filter.pass_hi << "] x pi rad/sample\n"
            << "  stopbands below " << req.filter.stop_lo << " and above "
            << req.filter.stop_hi << "\n"
            << "  ripple " << util::format_double(req.filter.passband_ripple_db, 3)
            << " dB, attenuation "
            << util::format_double(req.filter.stopband_atten_db, 1) << " dB\n"
            << "  sample period " << period << " us @ "
            << req.tech.feature_um << " um\n\n";

  // Design with a 0.7 ripple-fraction margin (as the MetaCore search does):
  // the nominal filter spends 70% of the ripple budget, leaving the rest
  // for coefficient quantization error.
  dsp::FilterSpec margined = req.filter;
  margined.passband_ripple_db *= 0.7;
  margined.stopband_atten_db += 3.1;
  const auto design = dsp::design_filter(margined);
  std::cout << "Elliptic design (with quantization margin): prototype order "
            << design.prototype_order << ", digital order "
            << design.tf.order() << ", stable: "
            << (design.tf.is_stable() ? "yes" : "no") << "\n\n";

  // Structure x word-length map: which combinations meet the spec, and at
  // what estimated area.
  util::TextTable sweep({"structure", "min word bits meeting spec",
                         "area at that word length", "recurrence-limited?"});
  for (const auto kind : dsp::all_structures()) {
    int min_bits = -1;
    double area = 0.0;
    bool feasible_at_period = true;
    for (int bits = 8; bits <= 24; ++bits) {
      const auto realization = dsp::realize(design.zpk, kind);
      const auto quantized = realization->quantized(bits);
      const auto tf = quantized->effective_tf();
      if (!tf.is_stable()) continue;
      const auto metrics = dsp::measure_bandpass(
          tf, req.filter.pass_lo, req.filter.pass_hi, req.filter.stop_lo,
          req.filter.stop_hi);
      if (metrics.passband_ripple_db > req.filter.passband_ripple_db ||
          metrics.max_stopband_gain_db > -req.filter.stopband_atten_db) {
        continue;
      }
      synth::IirCostQuery query;
      query.structure = kind;
      query.order = design.tf.order();
      query.word_bits = bits;
      query.sample_period_us = period;
      const auto cost = synth::evaluate_iir_cost(query);
      min_bits = bits;
      feasible_at_period = cost.feasible;
      area = cost.area_mm2;
      break;
    }
    sweep.add_row({dsp::to_string(kind),
                   min_bits > 0 ? std::to_string(min_bits) : "> 24",
                   min_bits > 0 && feasible_at_period
                       ? util::format_double(area, 2) + " mm^2"
                       : "-",
                   feasible_at_period ? "no" : "yes"});
  }
  sweep.print(std::cout);

  // Full MetaCore search over structure x stages x word length x ripple
  // allocation.
  std::cout << "\nRunning the multiresolution MetaCore search...\n";
  core::IirMetaCore metacore(req);
  search::SearchConfig config;
  config.initial_points_per_dim = 4;
  config.max_resolution = 2;
  config.max_evaluations = 300;
  const auto result = metacore.search(config);
  if (!result.found_feasible) {
    std::cout << "No feasible implementation at this sample period.\n";
    return 0;
  }
  const auto structure =
      core::IirMetaCore::structure_at(static_cast<int>(result.best.values[0]));
  std::cout << "Recommended implementation ("
            << result.evaluations << " evaluations):\n"
            << "  structure:    " << dsp::to_string(structure) << "\n"
            << "  extra stages: " << result.best.values[1] << "\n"
            << "  word length:  " << result.best.values[2] << " bits\n"
            << "  area:         "
            << util::format_double(result.best.eval.metric("area_mm2"), 2)
            << " mm^2\n"
            << "  latency:      "
            << util::format_double(result.best.eval.metric("latency_us"), 3)
            << " us\n"
            << "  ripple:       "
            << util::format_double(result.best.eval.metric("passband_ripple_db"), 4)
            << " dB (spec "
            << util::format_double(req.filter.passband_ripple_db, 4) << ")\n";
  return 0;
}
