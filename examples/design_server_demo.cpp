// Design-server demo: drive the DesignService from JSON query files —
// in-process, or over a real TCP socket in three network modes.
//
//   $ ./build/examples/design_server_demo [--store PATH]
//         [--expect-store-hits] [QUERY.json ...]            # in-process
//   $ ./build/examples/design_server_demo --listen PORT [--store PATH]
//   $ ./build/examples/design_server_demo --connect HOST:PORT
//         [--expect-store-hits] [QUERY.json ...]
//   $ ./build/examples/design_server_demo --loopback [--store PATH]
//         [--expect-store-hits] [QUERY.json ...]
//
// Each QUERY.json holds one DesignQuery document (see
// examples/queries/*.json). With no files, a built-in three-query demo
// batch runs: two Viterbi requirement points and an archive-only follow-up
// answered from the Pareto archive without a search.
//
// --listen starts the epoll server (port 0 = ephemeral, printed on
// stdout) and serves until SIGTERM/SIGINT, then drains gracefully —
// in-flight queries finish, responses flush, the store persists — and
// dumps the final stats snapshot. --connect is the matching client: it
// pipelines the whole batch over one connection (ids q1..qN), prints each
// response, and finishes with a `stats` request. --loopback runs both
// halves in one process on an ephemeral loopback port — the form the
// ctest socket smokes use.
//
// With --store PATH the evaluation store persists across invocations: run
// the demo twice against the same path and the second run answers out of
// the journal (store hits instead of simulation). --expect-store-hits
// makes that a hard check — the process fails unless at least one search
// was answered from the store (CI uses this to smoke-test warm restarts,
// in-process and over the socket).
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "robust/json.hpp"
#include "serve/service.hpp"

using namespace metacore;

namespace {

std::vector<serve::DesignQuery> builtin_batch() {
  std::vector<serve::DesignQuery> batch;
  for (const double mbps : {1.0, 2.0}) {
    serve::DesignQuery query;
    query.kind = serve::QueryKind::Viterbi;
    query.target_ber = 1e-2;
    query.esn0_db = 1.0;
    query.throughput_mbps = mbps;
    query.ber_shards = 4;
    query.budget.initial_points_per_dim = 2;
    query.budget.max_resolution = 0;
    query.budget.regions_per_level = 1;
    query.budget.max_evaluations = 32;
    batch.push_back(query);
  }
  serve::DesignQuery archive_query = batch.front();
  archive_query.archive_only = true;
  batch.push_back(archive_query);
  return batch;
}

serve::DesignQuery load_query_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read query file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return serve::parse_design_query(buf.str());
}

struct Options {
  std::string store_path;
  bool expect_store_hits = false;
  bool loopback = false;
  int listen_port = -1;           // >= 0: server mode
  std::string connect_target;     // "host:port": client mode
  /// Wire mode: "binary" makes the client negotiate MCB1 after
  /// connecting; "text" on the server side (--listen/--loopback) disables
  /// binary grants so a binary client exercises the downgrade path. Empty
  /// = defaults (text client, binary-capable server). Env default:
  /// METACORE_WIRE.
  std::string wire;
  std::vector<std::string> query_files;
};

net::DesignServer* g_server = nullptr;

extern "C" void demo_signal_handler(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

std::shared_ptr<serve::DesignService> make_service(const Options& opts) {
  serve::ServiceConfig config;
  config.store_path = opts.store_path;
  auto service = std::make_shared<serve::DesignService>(config);
  if (!opts.store_path.empty()) {
    std::cout << "evaluation store: " << opts.store_path << " ("
              << service->store()->size() << " entries on open)\n";
  }
  return service;
}

std::size_t store_hits_of(const std::string& response_json) {
  const robust::JsonValue doc = robust::parse_json(response_json, "response");
  const robust::JsonValue* hits = doc.find("store_hits");
  return (hits != nullptr && hits->type == robust::JsonValue::Type::Number)
             ? static_cast<std::size_t>(hits->number)
             : 0;
}

/// Pipelines the batch over one connection, prints every response, asks
/// for the server stats, and enforces --expect-store-hits. Returns the
/// process exit code.
int run_client_batch(net::DesignClient& client,
                     const std::vector<serve::DesignQuery>& batch,
                     bool expect_store_hits) {
  std::cout << "wire mode: "
            << (client.wire() == serve::WireEncoding::Binary ? "binary"
                                                             : "text")
            << "\n";
  std::cout << "submitting " << batch.size()
            << " query(ies) over the socket...\n\n";
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::string id = "q" + std::to_string(i + 1);
    client.send_query(id, batch[i]);
    ids.push_back(id);
  }
  std::size_t store_hits = 0;
  bool all_ok = true;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const net::WireResponse response = client.recv_matching(ids[i]);
    std::cout << "--- query " << i + 1 << " (" << ids[i]
              << "): " << serve::to_string(batch[i].kind)
              << (batch[i].archive_only ? " (archive-only)" : "") << "\n";
    if (!response.ok()) {
      std::cout << "status " << response.status << ": " << response.reason
                << "\n\n";
      all_ok = false;
      continue;
    }
    store_hits += store_hits_of(response.response_json);
    std::cout << response.response_json << "\n\n";
  }

  const net::WireResponse stats = client.stats();
  if (stats.ok()) {
    std::cout << "server stats: " << stats.stats_json << "\n";
  }
  std::cout << "store hits across the batch: " << store_hits << "\n";
  if (expect_store_hits && store_hits == 0) {
    std::cerr << "FAIL: --expect-store-hits set but no query was answered "
                 "from the store\n";
    return 1;
  }
  return all_ok ? 0 : 1;
}

/// Client-side wire-mode setup: negotiates binary when asked, reporting a
/// downgrade (the connection keeps working in text either way).
void apply_wire_mode(net::DesignClient& client, const Options& opts) {
  if (opts.wire != "binary") return;
  if (!client.negotiate_binary()) {
    std::cout << "server declined binary mode; staying on text\n";
  }
}

int run_listen(const Options& opts) {
  auto service = make_service(opts);
  net::ServerConfig config = net::ServerConfig::from_env();
  config.port = opts.listen_port;
  if (opts.wire == "text") config.enable_binary = false;
  net::DesignServer server(service, config);
  server.start();
  g_server = &server;
  std::signal(SIGTERM, demo_signal_handler);
  std::signal(SIGINT, demo_signal_handler);
  std::cout << "listening on 127.0.0.1:" << server.port()
            << " (SIGTERM/SIGINT drains and exits)\n"
            << std::flush;
  server.wait();       // until a signal requests the drain
  server.shutdown();   // joins threads once the drain completes
  g_server = nullptr;
  std::cout << "drained; final stats: " << server.stats_json() << "\n";
  return 0;
}

int run_connect(const Options& opts,
                const std::vector<serve::DesignQuery>& batch) {
  const std::size_t colon = opts.connect_target.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "--connect expects HOST:PORT\n";
    return 2;
  }
  const std::string host = opts.connect_target.substr(0, colon);
  const int port = std::stoi(opts.connect_target.substr(colon + 1));
  net::DesignClient client;
  client.connect(host, port);
  apply_wire_mode(client, opts);
  return run_client_batch(client, batch, opts.expect_store_hits);
}

int run_loopback(const Options& opts,
                 const std::vector<serve::DesignQuery>& batch) {
  auto service = make_service(opts);
  net::ServerConfig config = net::ServerConfig::from_env();
  if (opts.wire == "text") config.enable_binary = false;
  net::DesignServer server(service, config);
  server.start();
  std::cout << "loopback server on 127.0.0.1:" << server.port() << "\n";
  int rc = 0;
  {
    net::DesignClient client;
    client.connect("127.0.0.1", server.port());
    apply_wire_mode(client, opts);
    rc = run_client_batch(client, batch, opts.expect_store_hits);
  }
  server.shutdown();
  std::cout << "server drained cleanly\n";
  return rc;
}

int run_in_process(const Options& opts,
                   const std::vector<serve::DesignQuery>& batch) {
  auto service = make_service(opts);
  std::cout << "submitting " << batch.size() << " query(ies)...\n\n";

  const auto responses = service->submit_batch(batch);
  std::size_t store_hits = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const serve::DesignResponse& r = responses[i];
    store_hits += r.store_hits;
    std::cout << "--- query " << i + 1 << ": "
              << serve::to_string(batch[i].kind)
              << (batch[i].archive_only ? " (archive-only)" : "") << "\n"
              << r.summary << "\n";
    if (r.feasible) {
      std::cout << "front: " << r.front.size() << " point(s) over ("
                << r.front_x << ", " << r.front_y << ")\n";
    }
    std::cout << serve::to_json(r) << "\n\n";
  }

  const serve::ServiceStats stats = service->stats();
  std::cout << "service stats: " << stats.queries << " queries, "
            << stats.searches_launched << " searches, " << stats.coalesced
            << " coalesced, " << stats.archive_answers
            << " archive answers; " << store_hits << " store hit(s)\n";

  if (opts.expect_store_hits && store_hits == 0) {
    std::cerr << "FAIL: --expect-store-hits set but no query was answered "
                 "from the store\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store") {
      if (i + 1 >= argc) {
        std::cerr << "--store requires a path\n";
        return 2;
      }
      opts.store_path = argv[++i];
    } else if (arg == "--expect-store-hits") {
      opts.expect_store_hits = true;
    } else if (arg == "--listen") {
      if (i + 1 >= argc) {
        std::cerr << "--listen requires a port (0 = ephemeral)\n";
        return 2;
      }
      opts.listen_port = std::stoi(argv[++i]);
    } else if (arg == "--connect") {
      if (i + 1 >= argc) {
        std::cerr << "--connect requires HOST:PORT\n";
        return 2;
      }
      opts.connect_target = argv[++i];
    } else if (arg == "--loopback") {
      opts.loopback = true;
    } else if (arg.rfind("--wire=", 0) == 0) {
      opts.wire = arg.substr(7);
    } else if (arg == "--wire") {
      if (i + 1 >= argc) {
        std::cerr << "--wire requires a mode (text | binary)\n";
        return 2;
      }
      opts.wire = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: design_server_demo [--store PATH] [--expect-store-hits]"
             " [QUERY.json ...]\n"
             "       design_server_demo --listen PORT [--store PATH]"
             " [--wire=text|binary]\n"
             "       design_server_demo --connect HOST:PORT"
             " [--expect-store-hits] [--wire=text|binary] [QUERY.json ...]\n"
             "       design_server_demo --loopback [--store PATH]"
             " [--expect-store-hits] [--wire=text|binary] [QUERY.json ...]\n";
      return 0;
    } else {
      opts.query_files.push_back(arg);
    }
  }
  if (opts.wire.empty()) {
    const char* env = std::getenv("METACORE_WIRE");
    if (env != nullptr) opts.wire = env;
  }
  if (!opts.wire.empty() && opts.wire != "text" && opts.wire != "binary") {
    std::cerr << "--wire/METACORE_WIRE must be 'text' or 'binary', got '"
              << opts.wire << "'\n";
    return 2;
  }

  try {
    if (opts.listen_port >= 0) return run_listen(opts);

    std::vector<serve::DesignQuery> batch;
    if (opts.query_files.empty()) {
      batch = builtin_batch();
      std::cout << "no query files given; running the built-in demo batch\n";
    } else {
      for (const auto& path : opts.query_files) {
        batch.push_back(load_query_file(path));
      }
    }
    if (!opts.connect_target.empty()) return run_connect(opts, batch);
    if (opts.loopback) return run_loopback(opts, batch);
    return run_in_process(opts, batch);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
