// Design-server demo: drive the DesignService from JSON query files, the
// way a deployment would sit it behind a socket or a job queue.
//
//   $ ./build/examples/design_server_demo [--store PATH]
//         [--expect-store-hits] [QUERY.json ...]
//
// Each QUERY.json holds one DesignQuery document (see
// examples/queries/*.json). With no files, a built-in three-query demo
// batch runs: two Viterbi requirement points and an archive-only follow-up
// answered from the Pareto archive without a search.
//
// With --store PATH the evaluation store persists across invocations: run
// the demo twice against the same path and the second run answers out of
// the journal (store hits instead of simulation). --expect-store-hits
// makes that a hard check — the process fails unless at least one search
// was answered from the store (CI uses this to smoke-test warm restarts).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/service.hpp"

using namespace metacore;

namespace {

std::vector<serve::DesignQuery> builtin_batch() {
  std::vector<serve::DesignQuery> batch;
  for (const double mbps : {1.0, 2.0}) {
    serve::DesignQuery query;
    query.kind = serve::QueryKind::Viterbi;
    query.target_ber = 1e-2;
    query.esn0_db = 1.0;
    query.throughput_mbps = mbps;
    query.ber_shards = 4;
    query.budget.initial_points_per_dim = 2;
    query.budget.max_resolution = 0;
    query.budget.regions_per_level = 1;
    query.budget.max_evaluations = 32;
    batch.push_back(query);
  }
  serve::DesignQuery archive_query = batch.front();
  archive_query.archive_only = true;
  batch.push_back(archive_query);
  return batch;
}

serve::DesignQuery load_query_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read query file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return serve::parse_design_query(buf.str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path;
  bool expect_store_hits = false;
  std::vector<std::string> query_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store") {
      if (i + 1 >= argc) {
        std::cerr << "--store requires a path\n";
        return 2;
      }
      store_path = argv[++i];
    } else if (arg == "--expect-store-hits") {
      expect_store_hits = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: design_server_demo [--store PATH] "
                   "[--expect-store-hits] [QUERY.json ...]\n";
      return 0;
    } else {
      query_files.push_back(arg);
    }
  }

  std::vector<serve::DesignQuery> batch;
  try {
    if (query_files.empty()) {
      batch = builtin_batch();
      std::cout << "no query files given; running the built-in demo batch\n";
    } else {
      for (const auto& path : query_files) {
        batch.push_back(load_query_file(path));
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  serve::ServiceConfig config;
  config.store_path = store_path;
  serve::DesignService service(config);
  if (!store_path.empty()) {
    std::cout << "evaluation store: " << store_path << " ("
              << service.store()->size() << " entries on open)\n";
  }
  std::cout << "submitting " << batch.size() << " query(ies)...\n\n";

  const auto responses = service.submit_batch(batch);
  std::size_t store_hits = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const serve::DesignResponse& r = responses[i];
    store_hits += r.store_hits;
    std::cout << "--- query " << i + 1 << ": "
              << serve::to_string(batch[i].kind)
              << (batch[i].archive_only ? " (archive-only)" : "") << "\n"
              << r.summary << "\n";
    if (r.feasible) {
      std::cout << "front: " << r.front.size() << " point(s) over ("
                << r.front_x << ", " << r.front_y << ")\n";
    }
    std::cout << serve::to_json(r) << "\n\n";
  }

  const serve::ServiceStats stats = service.stats();
  std::cout << "service stats: " << stats.queries << " queries, "
            << stats.searches_launched << " searches, " << stats.coalesced
            << " coalesced, " << stats.archive_answers
            << " archive answers; " << store_hits << " store hit(s)\n";

  if (expect_store_hits && store_hits == 0) {
    std::cerr << "FAIL: --expect-store-hits set but no query was answered "
                 "from the store\n";
    return 1;
  }
  return 0;
}
