// Burst-channel demo: the same coded stream over a Gilbert-Elliott burst
// channel, decoded with and without a block interleaver, for each decoder
// family — showing both the burst sensitivity of convolutional coding and
// how the interleaver restores the AWGN-like operating point the MetaCore
// cost models assume.
//
//   $ ./build/examples/burst_interleaving_demo
#include <iostream>

#include "comm/ber.hpp"
#include "comm/burst_channel.hpp"
#include "comm/channel.hpp"
#include "comm/interleaver.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace metacore;
using namespace metacore::comm;

int main() {
  const CodeSpec code = best_rate_half_code(5);
  const Trellis trellis(code);

  GilbertElliottParams params;
  params.good_esn0_db = 6.0;
  params.bad_esn0_db = -6.0;
  params.p_good_to_bad = 0.004;  // ~1 burst per 250 symbols
  params.p_bad_to_good = 0.10;   // mean burst length 10 symbols

  std::cout << "Gilbert-Elliott channel: good " << params.good_esn0_db
            << " dB, bursts at " << params.bad_esn0_db << " dB, "
            << util::format_percent(params.bad_fraction(), 1)
            << " of symbols inside bursts\n\n";

  constexpr std::size_t kBits = 49'152;
  util::Random data_rng(2);
  std::vector<int> data(kBits);
  for (auto& b : data) b = data_rng.bit() ? 1 : 0;
  ConvolutionalEncoder encoder(code);
  BpskModulator mod;
  const auto tx = mod.modulate(encoder.encode(data));

  BlockInterleaver interleaver(64, 96);

  auto decode_errors = [&](DecoderKind kind, bool use_interleaver) {
    GilbertElliottChannel channel(params, 1.0, 77);
    std::vector<double> rx;
    if (use_interleaver) {
      const auto shuffled = interleaver.interleave(std::span<const double>(tx));
      rx = interleaver.deinterleave(
          std::span<const double>(channel.transmit(shuffled)));
    } else {
      rx = channel.transmit(tx);
    }
    DecoderSpec spec;
    spec.code = code;
    spec.traceback_depth = 25;
    spec.kind = kind;
    spec.low_res_bits = 1;
    spec.high_res_bits = 3;
    spec.num_high_res_paths = 8;
    auto decoder =
        spec.make_decoder(trellis, 1.0, channel.average_noise_sigma());
    const auto out = decoder->decode(rx);
    int errors = 0;
    for (std::size_t i = 0; i < data.size(); ++i) errors += out[i] != data[i];
    return errors;
  };

  util::TextTable table(
      {"decoder", "errors (no interleaver)", "errors (interleaved)"});
  for (const auto kind :
       {DecoderKind::Hard, DecoderKind::Multires, DecoderKind::Soft}) {
    table.add_row({to_string(kind),
                   std::to_string(decode_errors(kind, false)),
                   std::to_string(decode_errors(kind, true))});
  }
  table.print(std::cout);
  std::cout << "\nBursts overwhelm the code's constraint length; spreading\n"
               "them across " << interleaver.rows() << "x" << interleaver.cols()
            << " blocks restores near-AWGN behaviour for every decoder.\n";
  return 0;
}
