// Quickstart: decode a noisy convolutionally-coded stream with the three
// decoder families and evaluate what the cheapest hardware implementation
// of each would cost — the library's two halves in ~60 lines.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "comm/ber.hpp"
#include "cost/viterbi_cost.hpp"
#include "util/table.hpp"

using namespace metacore;

int main() {
  // A K=5 rate-1/2 code (the classic (35,23) generators), 2 Mbps target.
  comm::DecoderSpec spec;
  spec.code = comm::best_rate_half_code(5);
  spec.traceback_depth = 25;
  spec.low_res_bits = 1;
  spec.high_res_bits = 3;
  spec.num_high_res_paths = 4;

  std::cout << "Channel: BPSK over AWGN at Es/N0 = 1.5 dB\n"
            << "Code:    K=5, G=(" << spec.code.generators_octal()
            << "), rate 1/2, traceback depth 25\n\n";

  comm::BerRunConfig sim;
  sim.max_bits = 300'000;
  sim.min_bits = 300'000;
  sim.max_errors = 1u << 30;

  util::TextTable table({"decoder", "measured BER", "area @ 2 Mbps (mm^2)",
                         "cycles/bit", "cores"});
  for (const auto kind : {comm::DecoderKind::Hard, comm::DecoderKind::Multires,
                          comm::DecoderKind::Soft}) {
    spec.kind = kind;
    // Application-level performance: Monte-Carlo BER simulation.
    const auto ber = comm::measure_ber(spec, /*esn0_db=*/1.5, sim);
    // Implementation cost: the Trimaran-substitute VLIW cost engine.
    cost::ViterbiCostQuery query;
    query.spec = spec;
    query.throughput_mbps = 2.0;
    const auto cost = cost::evaluate_viterbi_cost(query);
    table.add_row({comm::to_string(kind),
                   util::format_scientific(ber.ber(), 2),
                   cost.feasible ? util::format_double(cost.area_mm2, 2)
                                 : "infeasible",
                   util::format_double(cost.cycles_per_bit, 0),
                   std::to_string(cost.cores)});
  }
  table.print(std::cout);
  std::cout << "\nThe multiresolution decoder recovers most of the hard ->\n"
               "soft BER gap. On the programmable-VLIW cost model (the\n"
               "paper's Trimaran-based engine) its area lands near plain\n"
               "soft decoding at equal K; the MetaCore search exploits it\n"
               "when trading constraint length against resolution.\n";
  return 0;
}
