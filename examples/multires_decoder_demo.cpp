// Multiresolution Viterbi walkthrough: encodes a short message, corrupts
// it, and decodes it step by step, printing the accumulated error metrics
// and which trellis states receive high-resolution refinement — a visual
// companion to Section 3.3 of the paper.
//
//   $ ./build/examples/multires_decoder_demo
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "comm/channel.hpp"
#include "comm/multires_viterbi.hpp"
#include "util/rng.hpp"

using namespace metacore;

int main() {
  const comm::CodeSpec code = comm::best_rate_half_code(3);  // K=3: 4 states
  const comm::Trellis trellis(code);

  comm::MultiresConfig config;
  config.traceback_depth = 9;
  config.low_res_bits = 1;
  config.high_res_bits = 3;
  config.num_high_res_paths = 2;  // refine the 2 best of 4 states
  config.normalization_terms = 1;

  std::cout << "Code: K=3, G=(" << code.generators_octal() << "), 4 states\n"
            << "Multiresolution: R1=" << config.low_res_bits
            << " bit trellis update, R2=" << config.high_res_bits
            << " bit refinement of the best M=" << config.num_high_res_paths
            << " paths\n\n";

  // Encode a short message and push it through a noisy channel.
  const std::vector<int> message{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0,
                                 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0};
  comm::ConvolutionalEncoder encoder(code);
  comm::BpskModulator modulator;
  comm::AwgnChannel channel(2.0, 1.0, /*seed=*/11);
  const auto rx = channel.transmit(modulator.modulate(encoder.encode(message)));

  comm::MultiresViterbiDecoder decoder(trellis, config, 1.0,
                                       channel.noise_sigma());

  std::cout << "step | rx symbols      | accumulated errors per state "
               "(* = refined at high resolution)\n"
            << "-----+-----------------+------------------------------------\n";
  std::vector<int> decoded;
  for (std::size_t t = 0; t < message.size(); ++t) {
    const std::span<const double> symbols{rx.data() + 2 * t, 2};
    const auto bit = decoder.step(symbols);
    if (bit) decoded.push_back(*bit);

    // Identify the refined (best-M) states for display.
    const auto acc = decoder.accumulated_errors();
    std::vector<std::size_t> order(acc.size());
    for (std::size_t s = 0; s < acc.size(); ++s) order[s] = s;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return acc[a] < acc[b]; });

    std::cout << std::setw(4) << t << " | " << std::showpos << std::fixed
              << std::setprecision(2) << std::setw(6) << symbols[0] << ", "
              << std::setw(6) << symbols[1] << std::noshowpos << " |";
    for (std::size_t s = 0; s < acc.size(); ++s) {
      const bool refined =
          std::find(order.begin(),
                    order.begin() + config.num_high_res_paths,
                    s) != order.begin() + config.num_high_res_paths;
      std::cout << "  S" << s << "=" << std::setw(7) << std::setprecision(2)
                << std::min(acc[s], 9999.0) << (refined ? "*" : " ");
    }
    std::cout << "\n";
  }
  for (int bit : decoder.flush()) decoded.push_back(bit);

  std::cout << "\nmessage: ";
  for (int b : message) std::cout << b;
  std::cout << "\ndecoded: ";
  for (int b : decoded) std::cout << b;
  int errors = 0;
  for (std::size_t i = 0; i < message.size(); ++i) {
    errors += decoded[i] != message[i];
  }
  std::cout << "\nbit errors: " << errors << " / " << message.size() << "\n";
  return 0;
}
