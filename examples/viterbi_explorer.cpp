// Viterbi MetaCore explorer: run the full multiresolution design-space
// search for a BER/throughput requirement given on the command line and
// print the chosen decoder configuration plus the runner-up candidates —
// one row of the paper's Table 3, interactively.
//
//   $ ./build/examples/viterbi_explorer [target_ber] [throughput_mbps] [esn0_db]
//   $ ./build/examples/viterbi_explorer 1e-3 2.0 1.5
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/viterbi_metacore.hpp"
#include "search/pareto.hpp"
#include "util/table.hpp"

using namespace metacore;

int main(int argc, char** argv) {
  core::ViterbiRequirements req;
  req.target_ber = argc > 1 ? std::atof(argv[1]) : 1e-3;
  req.throughput_mbps = argc > 2 ? std::atof(argv[2]) : 2.0;
  req.esn0_db = argc > 3 ? std::atof(argv[3]) : 1.5;

  std::cout << "Searching for the cheapest Viterbi decoder with\n"
            << "  BER <= " << util::format_scientific(req.target_ber, 0)
            << " at Es/N0 = " << req.esn0_db << " dB\n"
            << "  throughput >= " << req.throughput_mbps << " Mbps\n"
            << "  technology: " << req.tech.feature_um << " um (TR4101 anchor)\n\n";

  core::ViterbiMetaCore metacore(req);
  search::SearchConfig config;
  config.initial_points_per_dim = 4;
  config.max_resolution = 2;
  config.regions_per_level = 3;
  config.max_evaluations = 200;
  const auto result = metacore.search(config);

  std::cout << "Search finished: " << result.evaluations
            << " evaluations across " << result.levels_executed
            << " resolution levels, " << result.history.size()
            << " distinct design points.\n\n";

  if (!result.found_feasible) {
    std::cout << "No feasible design found — the requirement is beyond the\n"
                 "reachable BER/throughput envelope (compare the paper's\n"
                 "infeasible 1e-9 row of Table 3).\n";
    return 0;
  }

  const auto spec = metacore.decode_point(result.best.values);
  std::cout << "Selected MetaCore instance:\n  "
            << core::describe(spec, result.best.eval.metric("area_mm2"))
            << "\n  measured BER "
            << util::format_scientific(result.best.eval.metric("ber_observed"), 2)
            << ", " << result.best.eval.metric("cycles_per_bit")
            << " cycles/bit on " << result.best.eval.metric("cores")
            << " core(s)\n\n";

  // Runner-up table: the best few verified-or-screened candidates.
  std::vector<const search::EvaluatedPoint*> ranked;
  for (const auto& p : result.history) ranked.push_back(&p);
  const auto objective = metacore.objective();
  std::sort(ranked.begin(), ranked.end(),
            [&](const search::EvaluatedPoint* a, const search::EvaluatedPoint* b) {
              return objective.better(a->eval, b->eval);
            });
  util::TextTable table({"rank", "configuration", "screened BER", "area mm^2"});
  for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 8); ++i) {
    const auto& p = *ranked[i];
    const auto cand = metacore.decode_point(p.values);
    table.add_row({std::to_string(i + 1), cand.label(),
                   util::format_scientific(p.eval.metric("ber"), 1),
                   p.eval.has_metric("area_mm2")
                       ? util::format_double(p.eval.metric("area_mm2"), 2)
                       : "-"});
  }
  table.print(std::cout);

  // The underlying BER-area trade-off: the Pareto front over everything
  // the search evaluated, for picking alternative operating points.
  const auto front =
      search::pareto_front(result.history, "area_mm2", "ber");
  std::cout << "\nBER/area Pareto front (" << front.size() << " points):\n";
  util::TextTable pareto({"area mm^2", "screened BER", "configuration"});
  for (const auto& p : front) {
    pareto.add_row({util::format_double(p.eval.metric("area_mm2"), 2),
                    util::format_scientific(p.eval.metric("ber"), 1),
                    metacore.decode_point(p.values).label()});
  }
  pareto.print(std::cout);
  return 0;
}
