file(REMOVE_RECURSE
  "CMakeFiles/viterbi_explorer.dir/viterbi_explorer.cpp.o"
  "CMakeFiles/viterbi_explorer.dir/viterbi_explorer.cpp.o.d"
  "viterbi_explorer"
  "viterbi_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viterbi_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
