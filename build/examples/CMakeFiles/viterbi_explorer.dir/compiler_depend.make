# Empty compiler generated dependencies file for viterbi_explorer.
# This may be replaced when dependencies are built.
