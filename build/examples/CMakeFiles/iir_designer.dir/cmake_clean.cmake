file(REMOVE_RECURSE
  "CMakeFiles/iir_designer.dir/iir_designer.cpp.o"
  "CMakeFiles/iir_designer.dir/iir_designer.cpp.o.d"
  "iir_designer"
  "iir_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iir_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
