# Empty dependencies file for iir_designer.
# This may be replaced when dependencies are built.
