file(REMOVE_RECURSE
  "CMakeFiles/multires_decoder_demo.dir/multires_decoder_demo.cpp.o"
  "CMakeFiles/multires_decoder_demo.dir/multires_decoder_demo.cpp.o.d"
  "multires_decoder_demo"
  "multires_decoder_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multires_decoder_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
