# Empty compiler generated dependencies file for multires_decoder_demo.
# This may be replaced when dependencies are built.
