# Empty dependencies file for burst_interleaving_demo.
# This may be replaced when dependencies are built.
