file(REMOVE_RECURSE
  "CMakeFiles/burst_interleaving_demo.dir/burst_interleaving_demo.cpp.o"
  "CMakeFiles/burst_interleaving_demo.dir/burst_interleaving_demo.cpp.o.d"
  "burst_interleaving_demo"
  "burst_interleaving_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_interleaving_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
