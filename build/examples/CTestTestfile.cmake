# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multires_demo "/root/repo/build/examples/multires_decoder_demo")
set_tests_properties(example_multires_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_burst_demo "/root/repo/build/examples/burst_interleaving_demo")
set_tests_properties(example_burst_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
