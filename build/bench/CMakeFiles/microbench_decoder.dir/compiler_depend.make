# Empty compiler generated dependencies file for microbench_decoder.
# This may be replaced when dependencies are built.
