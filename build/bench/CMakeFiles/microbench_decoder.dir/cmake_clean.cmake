file(REMOVE_RECURSE
  "CMakeFiles/microbench_decoder.dir/microbench_decoder.cpp.o"
  "CMakeFiles/microbench_decoder.dir/microbench_decoder.cpp.o.d"
  "microbench_decoder"
  "microbench_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
