file(REMOVE_RECURSE
  "CMakeFiles/ablation_fixed_parameters.dir/ablation_fixed_parameters.cpp.o"
  "CMakeFiles/ablation_fixed_parameters.dir/ablation_fixed_parameters.cpp.o.d"
  "ablation_fixed_parameters"
  "ablation_fixed_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fixed_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
