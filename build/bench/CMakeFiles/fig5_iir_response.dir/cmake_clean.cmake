file(REMOVE_RECURSE
  "CMakeFiles/fig5_iir_response.dir/fig5_iir_response.cpp.o"
  "CMakeFiles/fig5_iir_response.dir/fig5_iir_response.cpp.o.d"
  "fig5_iir_response"
  "fig5_iir_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_iir_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
