# Empty compiler generated dependencies file for fig5_iir_response.
# This may be replaced when dependencies are built.
