
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_technology.cpp" "bench/CMakeFiles/ablation_technology.dir/ablation_technology.cpp.o" "gcc" "bench/CMakeFiles/ablation_technology.dir/ablation_technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/metacore_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/vliw/CMakeFiles/metacore_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/metacore_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metacore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
