# Empty dependencies file for table3_viterbi_search.
# This may be replaced when dependencies are built.
