file(REMOVE_RECURSE
  "CMakeFiles/table3_viterbi_search.dir/table3_viterbi_search.cpp.o"
  "CMakeFiles/table3_viterbi_search.dir/table3_viterbi_search.cpp.o.d"
  "table3_viterbi_search"
  "table3_viterbi_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_viterbi_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
