# Empty compiler generated dependencies file for microbench_engines.
# This may be replaced when dependencies are built.
