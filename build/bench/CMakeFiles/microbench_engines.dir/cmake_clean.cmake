file(REMOVE_RECURSE
  "CMakeFiles/microbench_engines.dir/microbench_engines.cpp.o"
  "CMakeFiles/microbench_engines.dir/microbench_engines.cpp.o.d"
  "microbench_engines"
  "microbench_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
