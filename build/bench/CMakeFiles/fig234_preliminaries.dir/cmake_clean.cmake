file(REMOVE_RECURSE
  "CMakeFiles/fig234_preliminaries.dir/fig234_preliminaries.cpp.o"
  "CMakeFiles/fig234_preliminaries.dir/fig234_preliminaries.cpp.o.d"
  "fig234_preliminaries"
  "fig234_preliminaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig234_preliminaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
