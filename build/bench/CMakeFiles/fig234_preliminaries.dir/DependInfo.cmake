
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig234_preliminaries.cpp" "bench/CMakeFiles/fig234_preliminaries.dir/fig234_preliminaries.cpp.o" "gcc" "bench/CMakeFiles/fig234_preliminaries.dir/fig234_preliminaries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vliw/CMakeFiles/metacore_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/metacore_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/metacore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
