# Empty compiler generated dependencies file for fig234_preliminaries.
# This may be replaced when dependencies are built.
