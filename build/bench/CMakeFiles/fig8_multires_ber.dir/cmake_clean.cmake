file(REMOVE_RECURSE
  "CMakeFiles/fig8_multires_ber.dir/fig8_multires_ber.cpp.o"
  "CMakeFiles/fig8_multires_ber.dir/fig8_multires_ber.cpp.o.d"
  "fig8_multires_ber"
  "fig8_multires_ber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_multires_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
