# Empty compiler generated dependencies file for fig8_multires_ber.
# This may be replaced when dependencies are built.
