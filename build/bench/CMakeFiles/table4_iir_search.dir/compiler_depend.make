# Empty compiler generated dependencies file for table4_iir_search.
# This may be replaced when dependencies are built.
