file(REMOVE_RECURSE
  "CMakeFiles/table4_iir_search.dir/table4_iir_search.cpp.o"
  "CMakeFiles/table4_iir_search.dir/table4_iir_search.cpp.o.d"
  "table4_iir_search"
  "table4_iir_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_iir_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
