# Empty compiler generated dependencies file for fig1_ber_instances.
# This may be replaced when dependencies are built.
