file(REMOVE_RECURSE
  "CMakeFiles/fig1_ber_instances.dir/fig1_ber_instances.cpp.o"
  "CMakeFiles/fig1_ber_instances.dir/fig1_ber_instances.cpp.o.d"
  "fig1_ber_instances"
  "fig1_ber_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ber_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
