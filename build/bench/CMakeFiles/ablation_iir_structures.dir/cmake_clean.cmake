file(REMOVE_RECURSE
  "CMakeFiles/ablation_iir_structures.dir/ablation_iir_structures.cpp.o"
  "CMakeFiles/ablation_iir_structures.dir/ablation_iir_structures.cpp.o.d"
  "ablation_iir_structures"
  "ablation_iir_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iir_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
