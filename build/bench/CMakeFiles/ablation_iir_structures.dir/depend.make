# Empty dependencies file for ablation_iir_structures.
# This may be replaced when dependencies are built.
