file(REMOVE_RECURSE
  "CMakeFiles/metacore_vliw.dir/ir.cpp.o"
  "CMakeFiles/metacore_vliw.dir/ir.cpp.o.d"
  "CMakeFiles/metacore_vliw.dir/machine.cpp.o"
  "CMakeFiles/metacore_vliw.dir/machine.cpp.o.d"
  "CMakeFiles/metacore_vliw.dir/scheduler.cpp.o"
  "CMakeFiles/metacore_vliw.dir/scheduler.cpp.o.d"
  "CMakeFiles/metacore_vliw.dir/simulator.cpp.o"
  "CMakeFiles/metacore_vliw.dir/simulator.cpp.o.d"
  "CMakeFiles/metacore_vliw.dir/viterbi_kernel.cpp.o"
  "CMakeFiles/metacore_vliw.dir/viterbi_kernel.cpp.o.d"
  "libmetacore_vliw.a"
  "libmetacore_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacore_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
