file(REMOVE_RECURSE
  "libmetacore_vliw.a"
)
