# Empty compiler generated dependencies file for metacore_vliw.
# This may be replaced when dependencies are built.
