
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vliw/ir.cpp" "src/vliw/CMakeFiles/metacore_vliw.dir/ir.cpp.o" "gcc" "src/vliw/CMakeFiles/metacore_vliw.dir/ir.cpp.o.d"
  "/root/repo/src/vliw/machine.cpp" "src/vliw/CMakeFiles/metacore_vliw.dir/machine.cpp.o" "gcc" "src/vliw/CMakeFiles/metacore_vliw.dir/machine.cpp.o.d"
  "/root/repo/src/vliw/scheduler.cpp" "src/vliw/CMakeFiles/metacore_vliw.dir/scheduler.cpp.o" "gcc" "src/vliw/CMakeFiles/metacore_vliw.dir/scheduler.cpp.o.d"
  "/root/repo/src/vliw/simulator.cpp" "src/vliw/CMakeFiles/metacore_vliw.dir/simulator.cpp.o" "gcc" "src/vliw/CMakeFiles/metacore_vliw.dir/simulator.cpp.o.d"
  "/root/repo/src/vliw/viterbi_kernel.cpp" "src/vliw/CMakeFiles/metacore_vliw.dir/viterbi_kernel.cpp.o" "gcc" "src/vliw/CMakeFiles/metacore_vliw.dir/viterbi_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/metacore_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/metacore_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
