# Empty dependencies file for metacore_cost.
# This may be replaced when dependencies are built.
