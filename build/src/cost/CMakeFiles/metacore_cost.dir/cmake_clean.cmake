file(REMOVE_RECURSE
  "CMakeFiles/metacore_cost.dir/area_model.cpp.o"
  "CMakeFiles/metacore_cost.dir/area_model.cpp.o.d"
  "CMakeFiles/metacore_cost.dir/viterbi_cost.cpp.o"
  "CMakeFiles/metacore_cost.dir/viterbi_cost.cpp.o.d"
  "libmetacore_cost.a"
  "libmetacore_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacore_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
