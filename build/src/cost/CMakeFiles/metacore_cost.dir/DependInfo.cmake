
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/area_model.cpp" "src/cost/CMakeFiles/metacore_cost.dir/area_model.cpp.o" "gcc" "src/cost/CMakeFiles/metacore_cost.dir/area_model.cpp.o.d"
  "/root/repo/src/cost/viterbi_cost.cpp" "src/cost/CMakeFiles/metacore_cost.dir/viterbi_cost.cpp.o" "gcc" "src/cost/CMakeFiles/metacore_cost.dir/viterbi_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/metacore_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/metacore_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/vliw/CMakeFiles/metacore_vliw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
