file(REMOVE_RECURSE
  "libmetacore_cost.a"
)
