file(REMOVE_RECURSE
  "CMakeFiles/metacore_util.dir/fixed.cpp.o"
  "CMakeFiles/metacore_util.dir/fixed.cpp.o.d"
  "CMakeFiles/metacore_util.dir/math.cpp.o"
  "CMakeFiles/metacore_util.dir/math.cpp.o.d"
  "CMakeFiles/metacore_util.dir/rng.cpp.o"
  "CMakeFiles/metacore_util.dir/rng.cpp.o.d"
  "CMakeFiles/metacore_util.dir/stats.cpp.o"
  "CMakeFiles/metacore_util.dir/stats.cpp.o.d"
  "CMakeFiles/metacore_util.dir/table.cpp.o"
  "CMakeFiles/metacore_util.dir/table.cpp.o.d"
  "libmetacore_util.a"
  "libmetacore_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacore_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
