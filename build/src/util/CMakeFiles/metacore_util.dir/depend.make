# Empty dependencies file for metacore_util.
# This may be replaced when dependencies are built.
