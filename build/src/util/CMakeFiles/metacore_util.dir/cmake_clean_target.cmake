file(REMOVE_RECURSE
  "libmetacore_util.a"
)
