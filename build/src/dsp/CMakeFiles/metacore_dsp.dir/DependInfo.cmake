
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/bit_accurate.cpp" "src/dsp/CMakeFiles/metacore_dsp.dir/bit_accurate.cpp.o" "gcc" "src/dsp/CMakeFiles/metacore_dsp.dir/bit_accurate.cpp.o.d"
  "/root/repo/src/dsp/design.cpp" "src/dsp/CMakeFiles/metacore_dsp.dir/design.cpp.o" "gcc" "src/dsp/CMakeFiles/metacore_dsp.dir/design.cpp.o.d"
  "/root/repo/src/dsp/elliptic.cpp" "src/dsp/CMakeFiles/metacore_dsp.dir/elliptic.cpp.o" "gcc" "src/dsp/CMakeFiles/metacore_dsp.dir/elliptic.cpp.o.d"
  "/root/repo/src/dsp/polynomial.cpp" "src/dsp/CMakeFiles/metacore_dsp.dir/polynomial.cpp.o" "gcc" "src/dsp/CMakeFiles/metacore_dsp.dir/polynomial.cpp.o.d"
  "/root/repo/src/dsp/prototypes.cpp" "src/dsp/CMakeFiles/metacore_dsp.dir/prototypes.cpp.o" "gcc" "src/dsp/CMakeFiles/metacore_dsp.dir/prototypes.cpp.o.d"
  "/root/repo/src/dsp/signal.cpp" "src/dsp/CMakeFiles/metacore_dsp.dir/signal.cpp.o" "gcc" "src/dsp/CMakeFiles/metacore_dsp.dir/signal.cpp.o.d"
  "/root/repo/src/dsp/structures.cpp" "src/dsp/CMakeFiles/metacore_dsp.dir/structures.cpp.o" "gcc" "src/dsp/CMakeFiles/metacore_dsp.dir/structures.cpp.o.d"
  "/root/repo/src/dsp/transfer_function.cpp" "src/dsp/CMakeFiles/metacore_dsp.dir/transfer_function.cpp.o" "gcc" "src/dsp/CMakeFiles/metacore_dsp.dir/transfer_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/metacore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
