# Empty dependencies file for metacore_dsp.
# This may be replaced when dependencies are built.
