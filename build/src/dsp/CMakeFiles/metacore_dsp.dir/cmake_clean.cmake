file(REMOVE_RECURSE
  "CMakeFiles/metacore_dsp.dir/bit_accurate.cpp.o"
  "CMakeFiles/metacore_dsp.dir/bit_accurate.cpp.o.d"
  "CMakeFiles/metacore_dsp.dir/design.cpp.o"
  "CMakeFiles/metacore_dsp.dir/design.cpp.o.d"
  "CMakeFiles/metacore_dsp.dir/elliptic.cpp.o"
  "CMakeFiles/metacore_dsp.dir/elliptic.cpp.o.d"
  "CMakeFiles/metacore_dsp.dir/polynomial.cpp.o"
  "CMakeFiles/metacore_dsp.dir/polynomial.cpp.o.d"
  "CMakeFiles/metacore_dsp.dir/prototypes.cpp.o"
  "CMakeFiles/metacore_dsp.dir/prototypes.cpp.o.d"
  "CMakeFiles/metacore_dsp.dir/signal.cpp.o"
  "CMakeFiles/metacore_dsp.dir/signal.cpp.o.d"
  "CMakeFiles/metacore_dsp.dir/structures.cpp.o"
  "CMakeFiles/metacore_dsp.dir/structures.cpp.o.d"
  "CMakeFiles/metacore_dsp.dir/transfer_function.cpp.o"
  "CMakeFiles/metacore_dsp.dir/transfer_function.cpp.o.d"
  "libmetacore_dsp.a"
  "libmetacore_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacore_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
