file(REMOVE_RECURSE
  "libmetacore_dsp.a"
)
