file(REMOVE_RECURSE
  "CMakeFiles/metacore_search.dir/baselines.cpp.o"
  "CMakeFiles/metacore_search.dir/baselines.cpp.o.d"
  "CMakeFiles/metacore_search.dir/multires_search.cpp.o"
  "CMakeFiles/metacore_search.dir/multires_search.cpp.o.d"
  "CMakeFiles/metacore_search.dir/objective.cpp.o"
  "CMakeFiles/metacore_search.dir/objective.cpp.o.d"
  "CMakeFiles/metacore_search.dir/parameter.cpp.o"
  "CMakeFiles/metacore_search.dir/parameter.cpp.o.d"
  "CMakeFiles/metacore_search.dir/pareto.cpp.o"
  "CMakeFiles/metacore_search.dir/pareto.cpp.o.d"
  "CMakeFiles/metacore_search.dir/predictor.cpp.o"
  "CMakeFiles/metacore_search.dir/predictor.cpp.o.d"
  "libmetacore_search.a"
  "libmetacore_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacore_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
