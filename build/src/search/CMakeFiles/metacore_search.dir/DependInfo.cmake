
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/baselines.cpp" "src/search/CMakeFiles/metacore_search.dir/baselines.cpp.o" "gcc" "src/search/CMakeFiles/metacore_search.dir/baselines.cpp.o.d"
  "/root/repo/src/search/multires_search.cpp" "src/search/CMakeFiles/metacore_search.dir/multires_search.cpp.o" "gcc" "src/search/CMakeFiles/metacore_search.dir/multires_search.cpp.o.d"
  "/root/repo/src/search/objective.cpp" "src/search/CMakeFiles/metacore_search.dir/objective.cpp.o" "gcc" "src/search/CMakeFiles/metacore_search.dir/objective.cpp.o.d"
  "/root/repo/src/search/parameter.cpp" "src/search/CMakeFiles/metacore_search.dir/parameter.cpp.o" "gcc" "src/search/CMakeFiles/metacore_search.dir/parameter.cpp.o.d"
  "/root/repo/src/search/pareto.cpp" "src/search/CMakeFiles/metacore_search.dir/pareto.cpp.o" "gcc" "src/search/CMakeFiles/metacore_search.dir/pareto.cpp.o.d"
  "/root/repo/src/search/predictor.cpp" "src/search/CMakeFiles/metacore_search.dir/predictor.cpp.o" "gcc" "src/search/CMakeFiles/metacore_search.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/metacore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
