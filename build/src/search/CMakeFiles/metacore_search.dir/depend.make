# Empty dependencies file for metacore_search.
# This may be replaced when dependencies are built.
