file(REMOVE_RECURSE
  "libmetacore_search.a"
)
