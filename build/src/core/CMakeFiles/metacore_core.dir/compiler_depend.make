# Empty compiler generated dependencies file for metacore_core.
# This may be replaced when dependencies are built.
