file(REMOVE_RECURSE
  "libmetacore_core.a"
)
