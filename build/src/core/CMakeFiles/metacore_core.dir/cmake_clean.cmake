file(REMOVE_RECURSE
  "CMakeFiles/metacore_core.dir/iir_metacore.cpp.o"
  "CMakeFiles/metacore_core.dir/iir_metacore.cpp.o.d"
  "CMakeFiles/metacore_core.dir/report.cpp.o"
  "CMakeFiles/metacore_core.dir/report.cpp.o.d"
  "CMakeFiles/metacore_core.dir/viterbi_metacore.cpp.o"
  "CMakeFiles/metacore_core.dir/viterbi_metacore.cpp.o.d"
  "libmetacore_core.a"
  "libmetacore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
