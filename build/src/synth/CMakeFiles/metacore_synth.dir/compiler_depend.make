# Empty compiler generated dependencies file for metacore_synth.
# This may be replaced when dependencies are built.
