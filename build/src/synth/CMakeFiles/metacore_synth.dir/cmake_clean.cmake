file(REMOVE_RECURSE
  "CMakeFiles/metacore_synth.dir/area.cpp.o"
  "CMakeFiles/metacore_synth.dir/area.cpp.o.d"
  "CMakeFiles/metacore_synth.dir/dfg.cpp.o"
  "CMakeFiles/metacore_synth.dir/dfg.cpp.o.d"
  "CMakeFiles/metacore_synth.dir/schedule.cpp.o"
  "CMakeFiles/metacore_synth.dir/schedule.cpp.o.d"
  "libmetacore_synth.a"
  "libmetacore_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacore_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
