file(REMOVE_RECURSE
  "libmetacore_synth.a"
)
