
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/ber.cpp" "src/comm/CMakeFiles/metacore_comm.dir/ber.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/ber.cpp.o.d"
  "/root/repo/src/comm/burst_channel.cpp" "src/comm/CMakeFiles/metacore_comm.dir/burst_channel.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/burst_channel.cpp.o.d"
  "/root/repo/src/comm/channel.cpp" "src/comm/CMakeFiles/metacore_comm.dir/channel.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/channel.cpp.o.d"
  "/root/repo/src/comm/convolutional.cpp" "src/comm/CMakeFiles/metacore_comm.dir/convolutional.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/convolutional.cpp.o.d"
  "/root/repo/src/comm/interleaver.cpp" "src/comm/CMakeFiles/metacore_comm.dir/interleaver.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/interleaver.cpp.o.d"
  "/root/repo/src/comm/multires_viterbi.cpp" "src/comm/CMakeFiles/metacore_comm.dir/multires_viterbi.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/multires_viterbi.cpp.o.d"
  "/root/repo/src/comm/puncture.cpp" "src/comm/CMakeFiles/metacore_comm.dir/puncture.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/puncture.cpp.o.d"
  "/root/repo/src/comm/quantizer.cpp" "src/comm/CMakeFiles/metacore_comm.dir/quantizer.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/quantizer.cpp.o.d"
  "/root/repo/src/comm/sequential.cpp" "src/comm/CMakeFiles/metacore_comm.dir/sequential.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/sequential.cpp.o.d"
  "/root/repo/src/comm/trellis.cpp" "src/comm/CMakeFiles/metacore_comm.dir/trellis.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/trellis.cpp.o.d"
  "/root/repo/src/comm/viterbi.cpp" "src/comm/CMakeFiles/metacore_comm.dir/viterbi.cpp.o" "gcc" "src/comm/CMakeFiles/metacore_comm.dir/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/metacore_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
