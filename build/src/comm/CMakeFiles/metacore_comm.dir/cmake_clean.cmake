file(REMOVE_RECURSE
  "CMakeFiles/metacore_comm.dir/ber.cpp.o"
  "CMakeFiles/metacore_comm.dir/ber.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/burst_channel.cpp.o"
  "CMakeFiles/metacore_comm.dir/burst_channel.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/channel.cpp.o"
  "CMakeFiles/metacore_comm.dir/channel.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/convolutional.cpp.o"
  "CMakeFiles/metacore_comm.dir/convolutional.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/interleaver.cpp.o"
  "CMakeFiles/metacore_comm.dir/interleaver.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/multires_viterbi.cpp.o"
  "CMakeFiles/metacore_comm.dir/multires_viterbi.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/puncture.cpp.o"
  "CMakeFiles/metacore_comm.dir/puncture.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/quantizer.cpp.o"
  "CMakeFiles/metacore_comm.dir/quantizer.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/sequential.cpp.o"
  "CMakeFiles/metacore_comm.dir/sequential.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/trellis.cpp.o"
  "CMakeFiles/metacore_comm.dir/trellis.cpp.o.d"
  "CMakeFiles/metacore_comm.dir/viterbi.cpp.o"
  "CMakeFiles/metacore_comm.dir/viterbi.cpp.o.d"
  "libmetacore_comm.a"
  "libmetacore_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metacore_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
