# Empty dependencies file for metacore_comm.
# This may be replaced when dependencies are built.
