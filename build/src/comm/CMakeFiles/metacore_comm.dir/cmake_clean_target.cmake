file(REMOVE_RECURSE
  "libmetacore_comm.a"
)
