file(REMOVE_RECURSE
  "CMakeFiles/search_objective_test.dir/search_objective_test.cpp.o"
  "CMakeFiles/search_objective_test.dir/search_objective_test.cpp.o.d"
  "search_objective_test"
  "search_objective_test.pdb"
  "search_objective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
