# Empty compiler generated dependencies file for search_objective_test.
# This may be replaced when dependencies are built.
