# Empty dependencies file for search_predictor_test.
# This may be replaced when dependencies are built.
