file(REMOVE_RECURSE
  "CMakeFiles/search_predictor_test.dir/search_predictor_test.cpp.o"
  "CMakeFiles/search_predictor_test.dir/search_predictor_test.cpp.o.d"
  "search_predictor_test"
  "search_predictor_test.pdb"
  "search_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
