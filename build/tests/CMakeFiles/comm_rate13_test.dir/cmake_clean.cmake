file(REMOVE_RECURSE
  "CMakeFiles/comm_rate13_test.dir/comm_rate13_test.cpp.o"
  "CMakeFiles/comm_rate13_test.dir/comm_rate13_test.cpp.o.d"
  "comm_rate13_test"
  "comm_rate13_test.pdb"
  "comm_rate13_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_rate13_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
