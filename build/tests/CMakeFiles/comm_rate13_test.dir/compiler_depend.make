# Empty compiler generated dependencies file for comm_rate13_test.
# This may be replaced when dependencies are built.
