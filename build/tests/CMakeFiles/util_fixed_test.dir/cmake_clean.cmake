file(REMOVE_RECURSE
  "CMakeFiles/util_fixed_test.dir/util_fixed_test.cpp.o"
  "CMakeFiles/util_fixed_test.dir/util_fixed_test.cpp.o.d"
  "util_fixed_test"
  "util_fixed_test.pdb"
  "util_fixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_fixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
