# Empty dependencies file for util_fixed_test.
# This may be replaced when dependencies are built.
