# Empty compiler generated dependencies file for comm_channel_test.
# This may be replaced when dependencies are built.
