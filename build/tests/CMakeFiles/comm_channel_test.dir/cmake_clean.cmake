file(REMOVE_RECURSE
  "CMakeFiles/comm_channel_test.dir/comm_channel_test.cpp.o"
  "CMakeFiles/comm_channel_test.dir/comm_channel_test.cpp.o.d"
  "comm_channel_test"
  "comm_channel_test.pdb"
  "comm_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
