file(REMOVE_RECURSE
  "CMakeFiles/dsp_design_test.dir/dsp_design_test.cpp.o"
  "CMakeFiles/dsp_design_test.dir/dsp_design_test.cpp.o.d"
  "dsp_design_test"
  "dsp_design_test.pdb"
  "dsp_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
