# Empty dependencies file for dsp_design_test.
# This may be replaced when dependencies are built.
