# Empty dependencies file for comm_viterbi_test.
# This may be replaced when dependencies are built.
