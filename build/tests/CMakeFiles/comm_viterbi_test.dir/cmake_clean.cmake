file(REMOVE_RECURSE
  "CMakeFiles/comm_viterbi_test.dir/comm_viterbi_test.cpp.o"
  "CMakeFiles/comm_viterbi_test.dir/comm_viterbi_test.cpp.o.d"
  "comm_viterbi_test"
  "comm_viterbi_test.pdb"
  "comm_viterbi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_viterbi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
