file(REMOVE_RECURSE
  "CMakeFiles/dsp_signal_test.dir/dsp_signal_test.cpp.o"
  "CMakeFiles/dsp_signal_test.dir/dsp_signal_test.cpp.o.d"
  "dsp_signal_test"
  "dsp_signal_test.pdb"
  "dsp_signal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
