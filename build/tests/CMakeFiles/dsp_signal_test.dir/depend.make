# Empty dependencies file for dsp_signal_test.
# This may be replaced when dependencies are built.
