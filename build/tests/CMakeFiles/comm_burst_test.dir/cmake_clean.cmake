file(REMOVE_RECURSE
  "CMakeFiles/comm_burst_test.dir/comm_burst_test.cpp.o"
  "CMakeFiles/comm_burst_test.dir/comm_burst_test.cpp.o.d"
  "comm_burst_test"
  "comm_burst_test.pdb"
  "comm_burst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_burst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
