# Empty dependencies file for comm_burst_test.
# This may be replaced when dependencies are built.
