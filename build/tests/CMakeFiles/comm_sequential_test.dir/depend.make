# Empty dependencies file for comm_sequential_test.
# This may be replaced when dependencies are built.
