file(REMOVE_RECURSE
  "CMakeFiles/comm_sequential_test.dir/comm_sequential_test.cpp.o"
  "CMakeFiles/comm_sequential_test.dir/comm_sequential_test.cpp.o.d"
  "comm_sequential_test"
  "comm_sequential_test.pdb"
  "comm_sequential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
