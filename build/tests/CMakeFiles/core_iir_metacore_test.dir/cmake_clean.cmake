file(REMOVE_RECURSE
  "CMakeFiles/core_iir_metacore_test.dir/core_iir_metacore_test.cpp.o"
  "CMakeFiles/core_iir_metacore_test.dir/core_iir_metacore_test.cpp.o.d"
  "core_iir_metacore_test"
  "core_iir_metacore_test.pdb"
  "core_iir_metacore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_iir_metacore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
