# Empty compiler generated dependencies file for core_iir_metacore_test.
# This may be replaced when dependencies are built.
