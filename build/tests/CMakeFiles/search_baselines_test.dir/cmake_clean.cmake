file(REMOVE_RECURSE
  "CMakeFiles/search_baselines_test.dir/search_baselines_test.cpp.o"
  "CMakeFiles/search_baselines_test.dir/search_baselines_test.cpp.o.d"
  "search_baselines_test"
  "search_baselines_test.pdb"
  "search_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
