# Empty compiler generated dependencies file for search_baselines_test.
# This may be replaced when dependencies are built.
