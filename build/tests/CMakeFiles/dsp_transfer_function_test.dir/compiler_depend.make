# Empty compiler generated dependencies file for dsp_transfer_function_test.
# This may be replaced when dependencies are built.
