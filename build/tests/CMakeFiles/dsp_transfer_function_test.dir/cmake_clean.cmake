file(REMOVE_RECURSE
  "CMakeFiles/dsp_transfer_function_test.dir/dsp_transfer_function_test.cpp.o"
  "CMakeFiles/dsp_transfer_function_test.dir/dsp_transfer_function_test.cpp.o.d"
  "dsp_transfer_function_test"
  "dsp_transfer_function_test.pdb"
  "dsp_transfer_function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_transfer_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
