# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dsp_transfer_function_test.
