file(REMOVE_RECURSE
  "CMakeFiles/comm_convolutional_test.dir/comm_convolutional_test.cpp.o"
  "CMakeFiles/comm_convolutional_test.dir/comm_convolutional_test.cpp.o.d"
  "comm_convolutional_test"
  "comm_convolutional_test.pdb"
  "comm_convolutional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_convolutional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
