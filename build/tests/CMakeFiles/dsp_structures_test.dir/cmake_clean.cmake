file(REMOVE_RECURSE
  "CMakeFiles/dsp_structures_test.dir/dsp_structures_test.cpp.o"
  "CMakeFiles/dsp_structures_test.dir/dsp_structures_test.cpp.o.d"
  "dsp_structures_test"
  "dsp_structures_test.pdb"
  "dsp_structures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
