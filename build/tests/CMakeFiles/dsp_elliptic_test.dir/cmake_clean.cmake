file(REMOVE_RECURSE
  "CMakeFiles/dsp_elliptic_test.dir/dsp_elliptic_test.cpp.o"
  "CMakeFiles/dsp_elliptic_test.dir/dsp_elliptic_test.cpp.o.d"
  "dsp_elliptic_test"
  "dsp_elliptic_test.pdb"
  "dsp_elliptic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_elliptic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
