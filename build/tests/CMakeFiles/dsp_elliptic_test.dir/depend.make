# Empty dependencies file for dsp_elliptic_test.
# This may be replaced when dependencies are built.
