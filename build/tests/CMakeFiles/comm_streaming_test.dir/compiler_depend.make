# Empty compiler generated dependencies file for comm_streaming_test.
# This may be replaced when dependencies are built.
