file(REMOVE_RECURSE
  "CMakeFiles/comm_streaming_test.dir/comm_streaming_test.cpp.o"
  "CMakeFiles/comm_streaming_test.dir/comm_streaming_test.cpp.o.d"
  "comm_streaming_test"
  "comm_streaming_test.pdb"
  "comm_streaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
