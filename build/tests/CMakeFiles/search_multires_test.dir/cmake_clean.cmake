file(REMOVE_RECURSE
  "CMakeFiles/search_multires_test.dir/search_multires_test.cpp.o"
  "CMakeFiles/search_multires_test.dir/search_multires_test.cpp.o.d"
  "search_multires_test"
  "search_multires_test.pdb"
  "search_multires_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_multires_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
