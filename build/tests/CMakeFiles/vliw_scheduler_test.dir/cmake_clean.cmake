file(REMOVE_RECURSE
  "CMakeFiles/vliw_scheduler_test.dir/vliw_scheduler_test.cpp.o"
  "CMakeFiles/vliw_scheduler_test.dir/vliw_scheduler_test.cpp.o.d"
  "vliw_scheduler_test"
  "vliw_scheduler_test.pdb"
  "vliw_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
