# Empty dependencies file for vliw_scheduler_test.
# This may be replaced when dependencies are built.
