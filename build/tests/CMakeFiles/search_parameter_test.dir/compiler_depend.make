# Empty compiler generated dependencies file for search_parameter_test.
# This may be replaced when dependencies are built.
