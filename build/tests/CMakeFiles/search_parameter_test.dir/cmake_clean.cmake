file(REMOVE_RECURSE
  "CMakeFiles/search_parameter_test.dir/search_parameter_test.cpp.o"
  "CMakeFiles/search_parameter_test.dir/search_parameter_test.cpp.o.d"
  "search_parameter_test"
  "search_parameter_test.pdb"
  "search_parameter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_parameter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
