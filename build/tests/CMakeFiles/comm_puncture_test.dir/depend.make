# Empty dependencies file for comm_puncture_test.
# This may be replaced when dependencies are built.
