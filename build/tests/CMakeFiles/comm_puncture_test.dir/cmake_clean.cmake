file(REMOVE_RECURSE
  "CMakeFiles/comm_puncture_test.dir/comm_puncture_test.cpp.o"
  "CMakeFiles/comm_puncture_test.dir/comm_puncture_test.cpp.o.d"
  "comm_puncture_test"
  "comm_puncture_test.pdb"
  "comm_puncture_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_puncture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
