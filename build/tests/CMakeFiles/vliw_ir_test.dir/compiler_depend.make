# Empty compiler generated dependencies file for vliw_ir_test.
# This may be replaced when dependencies are built.
