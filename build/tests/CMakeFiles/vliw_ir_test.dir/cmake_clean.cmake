file(REMOVE_RECURSE
  "CMakeFiles/vliw_ir_test.dir/vliw_ir_test.cpp.o"
  "CMakeFiles/vliw_ir_test.dir/vliw_ir_test.cpp.o.d"
  "vliw_ir_test"
  "vliw_ir_test.pdb"
  "vliw_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
