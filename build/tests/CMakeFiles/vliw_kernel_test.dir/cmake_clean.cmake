file(REMOVE_RECURSE
  "CMakeFiles/vliw_kernel_test.dir/vliw_kernel_test.cpp.o"
  "CMakeFiles/vliw_kernel_test.dir/vliw_kernel_test.cpp.o.d"
  "vliw_kernel_test"
  "vliw_kernel_test.pdb"
  "vliw_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
