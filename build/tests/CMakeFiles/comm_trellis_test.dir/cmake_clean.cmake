file(REMOVE_RECURSE
  "CMakeFiles/comm_trellis_test.dir/comm_trellis_test.cpp.o"
  "CMakeFiles/comm_trellis_test.dir/comm_trellis_test.cpp.o.d"
  "comm_trellis_test"
  "comm_trellis_test.pdb"
  "comm_trellis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_trellis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
