# Empty dependencies file for comm_trellis_test.
# This may be replaced when dependencies are built.
