file(REMOVE_RECURSE
  "CMakeFiles/dsp_polynomial_test.dir/dsp_polynomial_test.cpp.o"
  "CMakeFiles/dsp_polynomial_test.dir/dsp_polynomial_test.cpp.o.d"
  "dsp_polynomial_test"
  "dsp_polynomial_test.pdb"
  "dsp_polynomial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_polynomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
