# Empty dependencies file for dsp_polynomial_test.
# This may be replaced when dependencies are built.
