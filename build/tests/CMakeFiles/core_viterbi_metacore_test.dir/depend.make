# Empty dependencies file for core_viterbi_metacore_test.
# This may be replaced when dependencies are built.
