file(REMOVE_RECURSE
  "CMakeFiles/dsp_prototypes_test.dir/dsp_prototypes_test.cpp.o"
  "CMakeFiles/dsp_prototypes_test.dir/dsp_prototypes_test.cpp.o.d"
  "dsp_prototypes_test"
  "dsp_prototypes_test.pdb"
  "dsp_prototypes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_prototypes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
