# Empty dependencies file for dsp_prototypes_test.
# This may be replaced when dependencies are built.
