# Empty compiler generated dependencies file for vliw_simulator_test.
# This may be replaced when dependencies are built.
