file(REMOVE_RECURSE
  "CMakeFiles/vliw_simulator_test.dir/vliw_simulator_test.cpp.o"
  "CMakeFiles/vliw_simulator_test.dir/vliw_simulator_test.cpp.o.d"
  "vliw_simulator_test"
  "vliw_simulator_test.pdb"
  "vliw_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
