# Empty compiler generated dependencies file for core_metacore_sweep_test.
# This may be replaced when dependencies are built.
