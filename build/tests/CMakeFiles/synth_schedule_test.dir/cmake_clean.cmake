file(REMOVE_RECURSE
  "CMakeFiles/synth_schedule_test.dir/synth_schedule_test.cpp.o"
  "CMakeFiles/synth_schedule_test.dir/synth_schedule_test.cpp.o.d"
  "synth_schedule_test"
  "synth_schedule_test.pdb"
  "synth_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
