file(REMOVE_RECURSE
  "CMakeFiles/comm_multires_test.dir/comm_multires_test.cpp.o"
  "CMakeFiles/comm_multires_test.dir/comm_multires_test.cpp.o.d"
  "comm_multires_test"
  "comm_multires_test.pdb"
  "comm_multires_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_multires_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
