# Empty dependencies file for comm_multires_test.
# This may be replaced when dependencies are built.
