file(REMOVE_RECURSE
  "CMakeFiles/synth_area_test.dir/synth_area_test.cpp.o"
  "CMakeFiles/synth_area_test.dir/synth_area_test.cpp.o.d"
  "synth_area_test"
  "synth_area_test.pdb"
  "synth_area_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_area_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
