# Empty compiler generated dependencies file for synth_area_test.
# This may be replaced when dependencies are built.
