file(REMOVE_RECURSE
  "CMakeFiles/dsp_bit_accurate_test.dir/dsp_bit_accurate_test.cpp.o"
  "CMakeFiles/dsp_bit_accurate_test.dir/dsp_bit_accurate_test.cpp.o.d"
  "dsp_bit_accurate_test"
  "dsp_bit_accurate_test.pdb"
  "dsp_bit_accurate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_bit_accurate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
