# Empty dependencies file for dsp_bit_accurate_test.
# This may be replaced when dependencies are built.
