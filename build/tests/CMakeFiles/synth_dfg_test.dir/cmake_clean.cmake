file(REMOVE_RECURSE
  "CMakeFiles/synth_dfg_test.dir/synth_dfg_test.cpp.o"
  "CMakeFiles/synth_dfg_test.dir/synth_dfg_test.cpp.o.d"
  "synth_dfg_test"
  "synth_dfg_test.pdb"
  "synth_dfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_dfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
