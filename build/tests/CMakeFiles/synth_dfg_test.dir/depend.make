# Empty dependencies file for synth_dfg_test.
# This may be replaced when dependencies are built.
