file(REMOVE_RECURSE
  "CMakeFiles/comm_ber_test.dir/comm_ber_test.cpp.o"
  "CMakeFiles/comm_ber_test.dir/comm_ber_test.cpp.o.d"
  "comm_ber_test"
  "comm_ber_test.pdb"
  "comm_ber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_ber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
