# Empty dependencies file for comm_ber_test.
# This may be replaced when dependencies are built.
