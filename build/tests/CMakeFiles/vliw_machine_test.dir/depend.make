# Empty dependencies file for vliw_machine_test.
# This may be replaced when dependencies are built.
