file(REMOVE_RECURSE
  "CMakeFiles/vliw_machine_test.dir/vliw_machine_test.cpp.o"
  "CMakeFiles/vliw_machine_test.dir/vliw_machine_test.cpp.o.d"
  "vliw_machine_test"
  "vliw_machine_test.pdb"
  "vliw_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vliw_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
