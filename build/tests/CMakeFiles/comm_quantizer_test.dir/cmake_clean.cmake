file(REMOVE_RECURSE
  "CMakeFiles/comm_quantizer_test.dir/comm_quantizer_test.cpp.o"
  "CMakeFiles/comm_quantizer_test.dir/comm_quantizer_test.cpp.o.d"
  "comm_quantizer_test"
  "comm_quantizer_test.pdb"
  "comm_quantizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_quantizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
