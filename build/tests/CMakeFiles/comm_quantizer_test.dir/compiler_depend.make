# Empty compiler generated dependencies file for comm_quantizer_test.
# This may be replaced when dependencies are built.
